//! PARSEC 3.0-like multi-threaded workloads (Fig. 17, eight-core runs).
//!
//! PARSEC regions of interest are parallel loops; for the trace-driven model
//! each core receives its own copy of the benchmark's blend, offset into a
//! private address-space slice, which is what [`per_core_workloads`] provides.

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;

/// The PARSEC benchmarks used in the multi-core evaluation.
pub const BENCHMARKS: [&str; 9] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
    "vips",
];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not in [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    assert!(BENCHMARKS.contains(&name), "unknown PARSEC benchmark: {name}");
    let b = Blend::builder(name);
    match name {
        "blackscholes" => b.stream(0.5).resident(0.5).gap(24).finish(),
        "bodytrack" => b.stride(0.4).resident(0.4).noise(0.2).gap(20).finish(),
        "canneal" => b
            .memory_intensive()
            .chase(0.55)
            .noise(0.35)
            .resident(0.1)
            .gap(8)
            .chase_nodes(30_000)
            .finish(),
        "dedup" => b.memory_intensive().spatial(0.35).noise(0.4).stride(0.25).gap(12).finish(),
        "fluidanimate" => {
            b.memory_intensive().stream(0.45).spatial(0.35).resident(0.2).gap(12).finish()
        }
        "freqmine" => b.chase(0.35).resident(0.4).noise(0.25).gap(18).chase_nodes(10_000).finish(),
        "streamcluster" => {
            b.memory_intensive().stream(0.75).noise(0.15).resident(0.1).gap(7).finish()
        }
        "swaptions" => b.resident(0.8).stride(0.2).gap(45).finish(),
        "vips" => b.stream(0.5).stride(0.3).resident(0.2).gap(16).finish(),
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates one thread's worth of the named PARSEC-like workload.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

/// Streaming variant of [`per_core_workloads`]: `cores` lazy per-thread
/// sources, each shifted into its disjoint address-space slice, generating
/// records on demand instead of materialising `cores × accesses` records.
///
/// A zero `accesses` budget is valid and yields empty (but well-formed)
/// traces — callers must not assume every core has at least one record.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn per_core_sources(name: &str, accesses: usize, cores: usize) -> Vec<TraceSource> {
    let blueprint = blend(name);
    (0..cores)
        .map(|core| {
            let mut per_core = blueprint.clone();
            per_core.seed = crate::derive_seed(name, core as u64);
            per_core
                .source(accesses)
                .with_name(format!("{name}#t{core}"))
                .with_addr_offset((core as u64) << 38)
        })
        .collect()
}

/// Generates `cores` per-thread workloads, each shifted into a disjoint slice
/// of the address space (threads share code but mostly work on private data
/// partitions in these benchmarks' regions of interest).
///
/// Each thread's trace is generated from [`crate::derive_seed`]`(name, core)`
/// — a pure function of the benchmark name and core index — so the threads'
/// access interleavings are decorrelated (as real sibling threads are) while
/// generation stays position-independent: any core's trace can be
/// regenerated in isolation, in any order, on any worker thread.
///
/// Tiny access budgets degrade gracefully: `accesses == 0` produces empty
/// per-core traces rather than panicking, so downstream consumers must not
/// `unwrap()` aggregates (`min`/`max`) over a core's records.
#[must_use]
pub fn per_core_workloads(name: &str, accesses: usize, cores: usize) -> Vec<Workload> {
    per_core_sources(name, accesses, cores).iter().map(TraceSource::collect).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_blends() {
        for name in BENCHMARKS {
            let w = workload(name, 100);
            assert_eq!(w.memory_accesses(), 100);
        }
    }

    #[test]
    fn per_core_workloads_are_disjoint() {
        let per_core = per_core_workloads("canneal", 200, 4);
        assert_eq!(per_core.len(), 4);
        // Guarded aggregation: an empty per-core trace (tiny access budgets)
        // must fail the test with a message, not panic inside max()/min().
        let a_max = per_core[0].records.iter().map(|r| r.addr.raw()).max();
        let b_min = per_core[1].records.iter().map(|r| r.addr.raw()).min();
        match (a_max, b_min) {
            (Some(a), Some(b)) => assert!(b > a, "core address slices must not overlap"),
            _ => panic!("a 200-access budget must give every core records"),
        }
        assert!(per_core[0].memory_intensive);
    }

    #[test]
    fn zero_access_budgets_degrade_gracefully() {
        // A tiny or zero --accesses budget must not panic anywhere in the
        // per-core pipeline: cores simply receive empty (or short) traces.
        for accesses in [0usize, 1, 2] {
            let per_core = per_core_workloads("canneal", accesses, 3);
            assert_eq!(per_core.len(), 3);
            for (core, w) in per_core.iter().enumerate() {
                assert_eq!(w.memory_accesses(), accesses, "core {core}");
                assert_eq!(w.instructions(), w.records.iter().map(|r| r.instructions()).sum());
            }
            let sources = per_core_sources("canneal", accesses, 3);
            assert!(sources.iter().all(|s| s.records().count() == accesses));
        }
    }

    #[test]
    fn per_core_sources_stream_what_workloads_collect() {
        let sources = per_core_sources("dedup", 150, 2);
        let workloads = per_core_workloads("dedup", 150, 2);
        for (s, w) in sources.iter().zip(&workloads) {
            assert_eq!(&s.collect(), w);
        }
    }

    #[test]
    fn per_core_threads_are_decorrelated_but_position_independent() {
        let per_core = per_core_workloads("canneal", 300, 3);
        // Core 0 is the canonical (job 0) trace, unshifted.
        assert_eq!(per_core[0].records, workload("canneal", 300).records);
        // Sibling threads draw different interleavings from derived seeds.
        let strip = |w: &crate::Workload, core: u64| -> Vec<u64> {
            w.records.iter().map(|r| r.addr.raw() - (core << 38)).collect()
        };
        assert_ne!(strip(&per_core[1], 1), strip(&per_core[2], 2));
        // Regenerating the same core in isolation reproduces it exactly.
        assert_eq!(per_core_workloads("canneal", 300, 2)[1], per_core[1]);
    }

    #[test]
    #[should_panic(expected = "unknown PARSEC benchmark")]
    fn unknown_name_panics() {
        let _ = workload("raytrace", 10);
    }
}
