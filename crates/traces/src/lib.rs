//! Synthetic workload generators standing in for the paper's SPEC CPU2006,
//! SPEC CPU2017, PARSEC and Ligra traces.
//!
//! The real evaluation uses simpoint checkpoints of the actual benchmarks,
//! which are not available here. Each benchmark name is therefore mapped to a
//! deterministic, parameterised *mixture of access-pattern primitives*
//! (streams, strides, spatial footprints, delta chains, pointer chases,
//! random noise) whose blend and memory intensity follow the benchmark's
//! published characterisation — e.g. `459.GemsFDTD` interleaves a spatial PC
//! with a stream PC exactly as the paper's Fig. 2 shows, `mcf`/`omnetpp` are
//! pointer-chasing and irregular, `lbm`/`libquantum` are streaming, and the
//! "memory intensive" subset of Figs. 8/9 gets small instruction gaps and
//! DRAM-sized footprints. What the substitution preserves is the property the
//! selection algorithms act on: *which prefetcher suits which PC*.
//!
//! # Example
//!
//! ```
//! let w = traces::spec06::workload("GemsFDTD", 5_000);
//! assert_eq!(w.memory_accesses(), 5_000);
//! assert!(w.memory_intensive);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blend;
pub mod db;
pub mod gc;
pub mod ligra;
pub mod parsec;
pub mod patterns;
pub mod spec06;
pub mod spec17;
pub mod web;

pub use blend::{derive_seed, Blend, BlendBuilder};
pub use patterns::{
    delta_chain, interleave_weighted, interleave_weighted_iter, looping_stream, pointer_chase,
    random_noise, spatial_pages, stream, strided, zipfian,
};

use alecto_types::{TraceSource, Workload};

/// The registered benchmark suites: the four the paper evaluates plus the
/// three production-scenario families (pointer chasing, Zipfian web serving,
/// database scan/join) the stress sweeps exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-core, Fig. 8).
    Spec06,
    /// SPEC CPU2017 (single-core, Fig. 9).
    Spec17,
    /// PARSEC 3.0 (eight-core, Fig. 17).
    Parsec,
    /// Ligra graph workloads (eight-core, Fig. 17).
    Ligra,
    /// Linked-list / GC pointer chasing ([`gc`]).
    PointerChase,
    /// Zipfian web serving ([`web`]).
    WebServe,
    /// Database scan/join ([`db`]).
    Database,
}

impl Suite {
    /// Every registered suite, in registry order.
    pub const ALL: [Suite; 7] = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::PointerChase,
        Suite::WebServe,
        Suite::Database,
    ];

    /// Stable registry name of the suite.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Suite::Spec06 => "spec06",
            Suite::Spec17 => "spec17",
            Suite::Parsec => "parsec",
            Suite::Ligra => "ligra",
            Suite::PointerChase => "pointer-chase",
            Suite::WebServe => "web-serve",
            Suite::Database => "database",
        }
    }

    /// Finds the suite that registers `benchmark`, if any (benchmark names
    /// are unique across suites).
    #[must_use]
    pub fn of(benchmark: &str) -> Option<Suite> {
        Suite::ALL.into_iter().find(|s| s.benchmarks().contains(&benchmark))
    }

    /// Names of all benchmarks in the suite.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<&'static str> {
        match self {
            Suite::Spec06 => spec06::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Spec17 => spec17::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Parsec => parsec::BENCHMARKS.to_vec(),
            Suite::Ligra => ligra::BENCHMARKS.to_vec(),
            Suite::PointerChase => gc::BENCHMARKS.to_vec(),
            Suite::WebServe => web::BENCHMARKS.to_vec(),
            Suite::Database => db::BENCHMARKS.to_vec(),
        }
    }

    /// Generates the named workload with `accesses` memory accesses (eager,
    /// O(accesses) memory).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name is not part of the suite.
    #[must_use]
    pub fn workload(&self, name: &str, accesses: usize) -> Workload {
        match self {
            Suite::Spec06 => spec06::workload(name, accesses),
            Suite::Spec17 => spec17::workload(name, accesses),
            Suite::Parsec => parsec::workload(name, accesses),
            Suite::Ligra => ligra::workload(name, accesses),
            Suite::PointerChase => gc::workload(name, accesses),
            Suite::WebServe => web::workload(name, accesses),
            Suite::Database => db::workload(name, accesses),
        }
    }

    /// Streaming variant of [`Suite::workload`]: a lazy [`TraceSource`]
    /// producing the identical records in O(1) memory.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name is not part of the suite.
    #[must_use]
    pub fn source(&self, name: &str, accesses: usize) -> TraceSource {
        match self {
            Suite::Spec06 => spec06::source(name, accesses),
            Suite::Spec17 => spec17::source(name, accesses),
            Suite::Parsec => parsec::source(name, accesses),
            Suite::Ligra => ligra::source(name, accesses),
            Suite::PointerChase => gc::source(name, accesses),
            Suite::WebServe => web::source(name, accesses),
            Suite::Database => db::source(name, accesses),
        }
    }

    /// Generates every workload of the suite (eager).
    #[must_use]
    pub fn all_workloads(&self, accesses: usize) -> Vec<Workload> {
        self.benchmarks().iter().map(|b| self.workload(b, accesses)).collect()
    }

    /// Lazy sources for every benchmark of the suite.
    #[must_use]
    pub fn all_sources(&self, accesses: usize) -> Vec<TraceSource> {
        self.benchmarks().iter().map(|b| self.source(b, accesses)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_enumerate_benchmarks() {
        assert_eq!(Suite::Spec06.benchmarks().len(), 29);
        assert_eq!(Suite::Spec17.benchmarks().len(), 21);
        assert!(Suite::Parsec.benchmarks().len() >= 8);
        assert!(Suite::Ligra.benchmarks().len() >= 4);
        assert!(Suite::PointerChase.benchmarks().len() >= 4);
        assert!(Suite::WebServe.benchmarks().len() >= 3);
        assert!(Suite::Database.benchmarks().len() >= 4);
        assert_eq!(Suite::ALL.len(), 7);
    }

    #[test]
    fn every_benchmark_generates_a_trace() {
        for suite in Suite::ALL {
            for name in suite.benchmarks() {
                let w = suite.workload(name, 500);
                assert_eq!(w.memory_accesses(), 500, "{name}");
                assert!(w.instructions() >= 500, "{name}");
            }
        }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for suite in Suite::ALL {
            for name in suite.benchmarks() {
                assert!(seen.insert(name), "benchmark name {name} registered twice");
                assert_eq!(Suite::of(name), Some(suite), "{name}");
            }
        }
        assert_eq!(Suite::of("not-a-benchmark"), None);
        assert_eq!(Suite::WebServe.name(), "web-serve");
    }

    #[test]
    fn sources_match_workloads_across_the_registry() {
        for suite in Suite::ALL {
            let name = suite.benchmarks()[0];
            let s = suite.source(name, 200);
            assert_eq!(s.collect(), suite.workload(name, 200), "{name}");
        }
        assert_eq!(Suite::Database.all_sources(10).len(), Suite::Database.benchmarks().len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Suite::Spec06.workload("mcf", 1_000);
        let b = Suite::Spec06.workload("mcf", 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn all_workloads_helper() {
        let all = Suite::Ligra.all_workloads(100);
        assert_eq!(all.len(), Suite::Ligra.benchmarks().len());
    }
}
