//! Synthetic workload generators standing in for the paper's SPEC CPU2006,
//! SPEC CPU2017, PARSEC and Ligra traces.
//!
//! The real evaluation uses simpoint checkpoints of the actual benchmarks,
//! which are not available here. Each benchmark name is therefore mapped to a
//! deterministic, parameterised *mixture of access-pattern primitives*
//! (streams, strides, spatial footprints, delta chains, pointer chases,
//! random noise) whose blend and memory intensity follow the benchmark's
//! published characterisation — e.g. `459.GemsFDTD` interleaves a spatial PC
//! with a stream PC exactly as the paper's Fig. 2 shows, `mcf`/`omnetpp` are
//! pointer-chasing and irregular, `lbm`/`libquantum` are streaming, and the
//! "memory intensive" subset of Figs. 8/9 gets small instruction gaps and
//! DRAM-sized footprints. What the substitution preserves is the property the
//! selection algorithms act on: *which prefetcher suits which PC*.
//!
//! # Example
//!
//! ```
//! let w = traces::spec06::workload("GemsFDTD", 5_000);
//! assert_eq!(w.memory_accesses(), 5_000);
//! assert!(w.memory_intensive);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blend;
pub mod ligra;
pub mod parsec;
pub mod patterns;
pub mod spec06;
pub mod spec17;

pub use blend::{derive_seed, Blend, BlendBuilder};
pub use patterns::{
    delta_chain, interleave_weighted, looping_stream, pointer_chase, random_noise, spatial_pages,
    stream, strided,
};

use alecto_types::Workload;

/// The benchmark suites the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-core, Fig. 8).
    Spec06,
    /// SPEC CPU2017 (single-core, Fig. 9).
    Spec17,
    /// PARSEC 3.0 (eight-core, Fig. 17).
    Parsec,
    /// Ligra graph workloads (eight-core, Fig. 17).
    Ligra,
}

impl Suite {
    /// Names of all benchmarks in the suite.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<&'static str> {
        match self {
            Suite::Spec06 => spec06::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Spec17 => spec17::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Parsec => parsec::BENCHMARKS.to_vec(),
            Suite::Ligra => ligra::BENCHMARKS.to_vec(),
        }
    }

    /// Generates the named workload with `accesses` memory accesses.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name is not part of the suite.
    #[must_use]
    pub fn workload(&self, name: &str, accesses: usize) -> Workload {
        match self {
            Suite::Spec06 => spec06::workload(name, accesses),
            Suite::Spec17 => spec17::workload(name, accesses),
            Suite::Parsec => parsec::workload(name, accesses),
            Suite::Ligra => ligra::workload(name, accesses),
        }
    }

    /// Generates every workload of the suite.
    #[must_use]
    pub fn all_workloads(&self, accesses: usize) -> Vec<Workload> {
        self.benchmarks().iter().map(|b| self.workload(b, accesses)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_enumerate_benchmarks() {
        assert_eq!(Suite::Spec06.benchmarks().len(), 29);
        assert_eq!(Suite::Spec17.benchmarks().len(), 21);
        assert!(Suite::Parsec.benchmarks().len() >= 8);
        assert!(Suite::Ligra.benchmarks().len() >= 4);
    }

    #[test]
    fn every_benchmark_generates_a_trace() {
        for suite in [Suite::Spec06, Suite::Spec17, Suite::Parsec, Suite::Ligra] {
            for name in suite.benchmarks() {
                let w = suite.workload(name, 500);
                assert_eq!(w.memory_accesses(), 500, "{name}");
                assert!(w.instructions() >= 500, "{name}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Suite::Spec06.workload("mcf", 1_000);
        let b = Suite::Spec06.workload("mcf", 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn all_workloads_helper() {
        let all = Suite::Ligra.all_workloads(100);
        assert_eq!(all.len(), Suite::Ligra.benchmarks().len());
    }
}
