//! Synthetic workload generators standing in for the paper's SPEC CPU2006,
//! SPEC CPU2017, PARSEC and Ligra traces.
//!
//! The real evaluation uses simpoint checkpoints of the actual benchmarks,
//! which are not available here. Each benchmark name is therefore mapped to a
//! deterministic, parameterised *mixture of access-pattern primitives*
//! (streams, strides, spatial footprints, delta chains, pointer chases,
//! random noise) whose blend and memory intensity follow the benchmark's
//! published characterisation — e.g. `459.GemsFDTD` interleaves a spatial PC
//! with a stream PC exactly as the paper's Fig. 2 shows, `mcf`/`omnetpp` are
//! pointer-chasing and irregular, `lbm`/`libquantum` are streaming, and the
//! "memory intensive" subset of Figs. 8/9 gets small instruction gaps and
//! DRAM-sized footprints. What the substitution preserves is the property the
//! selection algorithms act on: *which prefetcher suits which PC*.
//!
//! # Example
//!
//! ```
//! let w = traces::spec06::workload("GemsFDTD", 5_000);
//! assert_eq!(w.memory_accesses(), 5_000);
//! assert!(w.memory_intensive);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blend;
pub mod db;
pub mod gc;
pub mod ligra;
pub mod parsec;
pub mod patterns;
pub mod spec06;
pub mod spec17;
pub mod web;

pub use blend::{derive_seed, Blend, BlendBuilder};
pub use patterns::{
    delta_chain, interleave_weighted, interleave_weighted_iter, looping_stream, phase_shift,
    pointer_chase, random_noise, set_aliasing, spatial_pages, stream, strided, zipfian,
};

use alecto_types::{TraceSource, Workload};

/// The registered benchmark suites: the four the paper evaluates, the three
/// production-scenario families (pointer chasing, Zipfian web serving,
/// database scan/join) the stress sweeps exercise, plus the `file:` scheme
/// for recorded `.altr` traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-core, Fig. 8).
    Spec06,
    /// SPEC CPU2017 (single-core, Fig. 9).
    Spec17,
    /// PARSEC 3.0 (eight-core, Fig. 17).
    Parsec,
    /// Ligra graph workloads (eight-core, Fig. 17).
    Ligra,
    /// Linked-list / GC pointer chasing ([`gc`]).
    PointerChase,
    /// Zipfian web serving ([`web`]).
    WebServe,
    /// Database scan/join ([`db`]).
    Database,
    /// On-disk `.altr` traces, addressed as `file:<path>`. Unlike the
    /// generator suites this one has no enumerable benchmark list (any
    /// readable trace file is a member), so it is excluded from
    /// [`Suite::ALL`] and reached only through [`Suite::of`] /
    /// [`Suite::source`].
    File,
}

impl Suite {
    /// Every enumerable suite, in registry order ([`Suite::File`] is
    /// resolution-only: its members are paths, not names).
    pub const ALL: [Suite; 7] = [
        Suite::Spec06,
        Suite::Spec17,
        Suite::Parsec,
        Suite::Ligra,
        Suite::PointerChase,
        Suite::WebServe,
        Suite::Database,
    ];

    /// Stable registry name of the suite.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Suite::Spec06 => "spec06",
            Suite::Spec17 => "spec17",
            Suite::Parsec => "parsec",
            Suite::Ligra => "ligra",
            Suite::PointerChase => "pointer-chase",
            Suite::WebServe => "web-serve",
            Suite::Database => "database",
            Suite::File => "file",
        }
    }

    /// Finds the suite that registers `benchmark`, if any (benchmark names
    /// are unique across suites). A `file:<path>` spec resolves to
    /// [`Suite::File`] syntactically — whether the path actually holds a
    /// readable trace only surfaces when the source is built.
    #[must_use]
    pub fn of(benchmark: &str) -> Option<Suite> {
        if benchmark.starts_with(traceio::FILE_SCHEME) {
            return Some(Suite::File);
        }
        Suite::ALL.into_iter().find(|s| s.benchmarks().contains(&benchmark))
    }

    /// Names of all benchmarks in the suite.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<&'static str> {
        match self {
            Suite::Spec06 => spec06::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Spec17 => spec17::BENCHMARKS.iter().map(|b| b.name).collect(),
            Suite::Parsec => parsec::BENCHMARKS.to_vec(),
            Suite::Ligra => ligra::BENCHMARKS.to_vec(),
            Suite::PointerChase => gc::BENCHMARKS.to_vec(),
            Suite::WebServe => web::BENCHMARKS.to_vec(),
            Suite::Database => db::BENCHMARKS.to_vec(),
            Suite::File => Vec::new(),
        }
    }

    /// Generates the named workload with `accesses` memory accesses (eager,
    /// O(accesses) memory).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name is not part of the suite, or (for
    /// [`Suite::File`]) if the trace file cannot be opened.
    #[must_use]
    pub fn workload(&self, name: &str, accesses: usize) -> Workload {
        match self {
            Suite::Spec06 => spec06::workload(name, accesses),
            Suite::Spec17 => spec17::workload(name, accesses),
            Suite::Parsec => parsec::workload(name, accesses),
            Suite::Ligra => ligra::workload(name, accesses),
            Suite::PointerChase => gc::workload(name, accesses),
            Suite::WebServe => web::workload(name, accesses),
            Suite::Database => db::workload(name, accesses),
            Suite::File => self.source(name, accesses).collect(),
        }
    }

    /// Streaming variant of [`Suite::workload`]: a lazy [`TraceSource`]
    /// producing the identical records in O(1) memory.
    ///
    /// For [`Suite::File`], `name` is the full `file:<path>` spec and
    /// `accesses` caps the replay at `min(accesses, recorded records)` — so
    /// a recorded trace slots into any experiment's access budget exactly
    /// like a generator would.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name is not part of the suite, or (for
    /// [`Suite::File`]) if the trace file cannot be opened or has a bad
    /// header. Callers that must not panic (the CLI) open the trace through
    /// [`traceio::TraceReader`] directly and handle the `Result`.
    #[must_use]
    pub fn source(&self, name: &str, accesses: usize) -> TraceSource {
        match self {
            Suite::Spec06 => spec06::source(name, accesses),
            Suite::Spec17 => spec17::source(name, accesses),
            Suite::Parsec => parsec::source(name, accesses),
            Suite::Ligra => ligra::source(name, accesses),
            Suite::PointerChase => gc::source(name, accesses),
            Suite::WebServe => web::source(name, accesses),
            Suite::Database => db::source(name, accesses),
            Suite::File => {
                let path = traceio::file_spec_path(name)
                    .unwrap_or_else(|| panic!("{name:?} is not a file:<path> spec"));
                traceio::file_source(path, Some(accesses))
                    .unwrap_or_else(|err| panic!("cannot open trace {}: {err}", path.display()))
            }
        }
    }

    /// Generates every workload of the suite (eager).
    #[must_use]
    pub fn all_workloads(&self, accesses: usize) -> Vec<Workload> {
        self.benchmarks().iter().map(|b| self.workload(b, accesses)).collect()
    }

    /// Lazy sources for every benchmark of the suite.
    #[must_use]
    pub fn all_sources(&self, accesses: usize) -> Vec<TraceSource> {
        self.benchmarks().iter().map(|b| self.source(b, accesses)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_enumerate_benchmarks() {
        assert_eq!(Suite::Spec06.benchmarks().len(), 29);
        assert_eq!(Suite::Spec17.benchmarks().len(), 21);
        assert!(Suite::Parsec.benchmarks().len() >= 8);
        assert!(Suite::Ligra.benchmarks().len() >= 4);
        assert!(Suite::PointerChase.benchmarks().len() >= 4);
        assert!(Suite::WebServe.benchmarks().len() >= 3);
        assert!(Suite::Database.benchmarks().len() >= 4);
        assert_eq!(Suite::ALL.len(), 7);
    }

    #[test]
    fn every_benchmark_generates_a_trace() {
        for suite in Suite::ALL {
            for name in suite.benchmarks() {
                let w = suite.workload(name, 500);
                assert_eq!(w.memory_accesses(), 500, "{name}");
                assert!(w.instructions() >= 500, "{name}");
            }
        }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for suite in Suite::ALL {
            for name in suite.benchmarks() {
                assert!(seen.insert(name), "benchmark name {name} registered twice");
                assert_eq!(Suite::of(name), Some(suite), "{name}");
            }
        }
        assert_eq!(Suite::of("not-a-benchmark"), None);
        assert_eq!(Suite::WebServe.name(), "web-serve");
    }

    #[test]
    fn sources_match_workloads_across_the_registry() {
        for suite in Suite::ALL {
            let name = suite.benchmarks()[0];
            let s = suite.source(name, 200);
            assert_eq!(s.collect(), suite.workload(name, 200), "{name}");
        }
        assert_eq!(Suite::Database.all_sources(10).len(), Suite::Database.benchmarks().len());
    }

    #[test]
    fn file_scheme_resolves_and_replays_recorded_traces() {
        let path =
            std::env::temp_dir().join(format!("traces-file-scheme-{}.altr", std::process::id()));
        let source = Suite::Spec06.source("mcf", 120);
        traceio::record_source(&source, derive_seed("mcf", 0), &path).expect("record");
        let spec = format!("file:{}", path.display());

        // `Suite::of` resolves the scheme; ALL stays the enumerable suites.
        assert_eq!(Suite::of(&spec), Some(Suite::File));
        assert!(!Suite::ALL.contains(&Suite::File));
        assert_eq!(Suite::File.name(), "file");
        assert!(Suite::File.benchmarks().is_empty());

        // Replay is record-identical to the generator, keeps the recorded
        // name and intensity, and honours the access cap.
        let replayed = Suite::File.source(&spec, 120);
        assert_eq!(replayed.collect(), Suite::Spec06.workload("mcf", 120));
        let capped = Suite::File.source(&spec, 10);
        assert_eq!(capped.memory_accesses(), 10);
        assert_eq!(capped.collect().records, Suite::Spec06.workload("mcf", 10).records);
        assert_eq!(Suite::File.workload(&spec, 120), Suite::Spec06.workload("mcf", 120));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Suite::Spec06.workload("mcf", 1_000);
        let b = Suite::Spec06.workload("mcf", 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn all_workloads_helper() {
        let all = Suite::Ligra.all_workloads(100);
        assert_eq!(all.len(), Suite::Ligra.benchmarks().len());
    }
}
