//! A Triangel-style on-chip temporal prefetcher.
//!
//! Temporal prefetchers record *address correlation*: "the last time line A
//! was accessed, line B was accessed next", in a large on-chip metadata (Markov)
//! table. They are the only prefetchers able to cover pointer-chasing and
//! other irregular-but-recurring access sequences, at the cost of metadata
//! storage that is orders of magnitude larger than the other prefetchers
//! (Fig. 14 sweeps 128 KB–1 MB).
//!
//! §IV-F of the paper argues that the *training stream* of a temporal
//! prefetcher should be filtered aggressively: non-temporal PCs, PCs already
//! handled by cheaper prefetchers, and rarely recurring PCs only waste the
//! metadata table. The experiments around Fig. 13/14 measure exactly that, so
//! this implementation exposes its metadata-table hit/miss/eviction counts.

use std::collections::BTreeMap;

use alecto_types::{DemandAccess, LineAddr};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

/// Bytes of metadata per correlation entry (tag + successor pointer), used to
/// convert a byte budget into an entry count the way the paper talks about
/// "a 1 MB metadata table".
pub const BYTES_PER_ENTRY: u64 = 8;

/// Configuration of the temporal prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalConfig {
    /// Metadata table capacity in bytes (Fig. 14: 128 KB – 1 MB).
    pub metadata_bytes: u64,
    /// Maximum prefetch degree (the paper fixes it to 1 in §V-C); requests
    /// beyond this are not emitted even if the selection grants more.
    pub max_degree: u32,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self { metadata_bytes: 1024 * 1024, max_degree: 1 }
    }
}

impl TemporalConfig {
    /// Number of correlation entries the byte budget affords.
    #[must_use]
    pub const fn capacity_entries(&self) -> usize {
        (self.metadata_bytes / BYTES_PER_ENTRY) as usize
    }
}

/// The temporal (address-correlating) prefetcher.
#[derive(Debug, Clone)]
pub struct TemporalPrefetcher {
    config: TemporalConfig,
    /// line -> (successor line, insertion order) correlation table. Ordered
    /// so that capacity eviction is deterministic across runs and threads.
    table: BTreeMap<LineAddr, (LineAddr, u64)>,
    /// FIFO order counter used for capacity eviction.
    insert_clock: u64,
    last_line: Option<LineAddr>,
    stats: TableStats,
}

impl TemporalPrefetcher {
    /// Creates a temporal prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: TemporalConfig) -> Self {
        Self {
            table: BTreeMap::new(),
            config,
            insert_clock: 0,
            last_line: None,
            stats: TableStats::default(),
        }
    }

    /// Creates a temporal prefetcher with a 1 MB metadata table (§V-C).
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(TemporalConfig::default())
    }

    /// Configuration in use.
    #[must_use]
    pub const fn config(&self) -> &TemporalConfig {
        &self.config
    }

    /// Number of currently valid correlation entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.table.len()
    }

    fn evict_if_full(&mut self) {
        let capacity = self.config.capacity_entries().max(1);
        if self.table.len() < capacity {
            return;
        }
        // Approximate FIFO eviction: drop the oldest entry. A full Triangel
        // implementation uses set-associative metadata with usefulness-aware
        // replacement; FIFO is sufficient to expose the capacity pressure the
        // paper's Fig. 14 measures.
        if let Some((&victim, _)) = self.table.iter().min_by_key(|(_, (_, order))| *order) {
            self.table.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

impl Prefetcher for TemporalPrefetcher {
    fn name(&self) -> &'static str {
        "TP"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Temporal
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        self.stats.trainings += 1;

        // Train: record predecessor -> current correlation.
        if let Some(prev) = self.last_line {
            if prev != line {
                self.insert_clock += 1;
                if let Some(slot) = self.table.get_mut(&prev) {
                    *slot = (line, self.insert_clock);
                } else {
                    self.evict_if_full();
                    self.table.insert(prev, (line, self.insert_clock));
                }
            }
        }
        self.last_line = Some(line);

        // Predict: chase successors starting from the current line.
        let degree = degree.min(self.config.max_degree);
        if degree == 0 {
            return;
        }
        let mut cursor = line;
        for _ in 0..degree {
            self.stats.lookups += 1;
            match self.table.get(&cursor) {
                Some(&(next, _)) => {
                    self.stats.hits += 1;
                    if next == line || out.contains(&next) {
                        break;
                    }
                    out.push(next);
                    self.stats.candidates_emitted += 1;
                    cursor = next;
                }
                None => {
                    self.stats.misses += 1;
                    break;
                }
            }
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        self.table.contains_key(&access.line())
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.config.metadata_bytes * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, Pc};

    fn access(addr_line: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(0xb00), Addr::new(addr_line * 64))
    }

    /// A pointer-chasing style recurring sequence of line numbers.
    fn chase_sequence() -> Vec<u64> {
        vec![100, 5_000, 230, 77_000, 41, 9_999, 1_234, 88]
    }

    #[test]
    fn recurring_sequence_is_predicted_on_second_pass() {
        let mut pf = TemporalPrefetcher::default_config();
        let seq = chase_sequence();
        let mut out = Vec::new();
        // First pass trains, second pass should predict each successor.
        for &l in &seq {
            pf.train_and_predict(&access(l), 1, &mut out);
        }
        let mut predicted = 0;
        for (i, &l) in seq.iter().enumerate() {
            out.clear();
            pf.train_and_predict(&access(l), 1, &mut out);
            if i + 1 < seq.len() && out.contains(&LineAddr::new(seq[i + 1])) {
                predicted += 1;
            }
        }
        assert!(predicted >= seq.len() - 2, "most successors should be predicted, got {predicted}");
    }

    #[test]
    fn degree_capped_at_max_degree() {
        let mut pf = TemporalPrefetcher::default_config();
        let seq = chase_sequence();
        let mut out = Vec::new();
        for _ in 0..2 {
            for &l in &seq {
                pf.train_and_predict(&access(l), 4, &mut out);
            }
        }
        out.clear();
        pf.train_and_predict(&access(seq[0]), 4, &mut out);
        assert!(out.len() <= 1, "paper fixes temporal degree to 1, got {}", out.len());
    }

    #[test]
    fn capacity_pressure_causes_evictions_and_misses() {
        let small = TemporalConfig { metadata_bytes: 1024, max_degree: 1 }; // 128 entries
        let mut pf = TemporalPrefetcher::new(small);
        let mut out = Vec::new();
        // A recurring sequence longer than the table.
        let seq: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        for _ in 0..3 {
            for &l in &seq {
                pf.train_and_predict(&access(l), 1, &mut out);
            }
        }
        assert!(pf.table_stats().evictions > 0);
        assert!(pf.occupancy() <= small.capacity_entries());
        assert!(pf.table_stats().misses > 0, "a thrashing table must miss");
    }

    #[test]
    fn larger_metadata_covers_longer_reuse() {
        let seq: Vec<u64> = (0..2_000).map(|i| (i * 104_729) % 1_000_000).collect();
        let run = |bytes: u64| {
            let mut pf =
                TemporalPrefetcher::new(TemporalConfig { metadata_bytes: bytes, max_degree: 1 });
            let mut out = Vec::new();
            // Two passes: first trains, second measures hits.
            for &l in &seq {
                pf.train_and_predict(&access(l), 0, &mut out);
            }
            let mut hits = 0;
            for &l in &seq {
                out.clear();
                pf.train_and_predict(&access(l), 1, &mut out);
                if !out.is_empty() {
                    hits += 1;
                }
            }
            hits
        };
        let small_hits = run(4 * 1024); // 512 entries << 2000-line working set
        let big_hits = run(64 * 1024); // 8192 entries, fits easily
        assert!(
            big_hits > small_hits,
            "bigger metadata must cover more ({big_hits} vs {small_hits})"
        );
    }

    #[test]
    fn non_recurring_stream_gains_nothing() {
        let mut pf = TemporalPrefetcher::default_config();
        let mut out = Vec::new();
        for l in 0..1_000u64 {
            pf.train_and_predict(&access(l * 3 + 7_000_000), 1, &mut out);
        }
        // Successor of a never-repeated line cannot be predicted at first sight.
        assert!(out.is_empty());
    }

    #[test]
    fn metadata_storage_matches_budget() {
        let pf =
            TemporalPrefetcher::new(TemporalConfig { metadata_bytes: 256 * 1024, max_degree: 1 });
        assert_eq!(pf.storage_bits(), 256 * 1024 * 8);
        assert_eq!(pf.config().capacity_entries(), 32 * 1024);
        assert!(pf.is_temporal());
        assert_eq!(pf.kind(), PrefetcherKind::Temporal);
        assert_eq!(pf.name(), "TP");
    }
}
