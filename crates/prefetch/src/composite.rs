//! Composite prefetcher bundles: the fixed sets of prefetchers the paper's
//! selection algorithms schedule.
//!
//! §V-B: every selection algorithm (IPCP, DOL, Bandit, Alecto) schedules the
//! *same* composite; the default is GS + CS + PMP (Arm Neoverse V2-like), the
//! alternate composite of Fig. 11 is GS + Berti + CPLX, and the temporal
//! experiments of Fig. 13/14 append a temporal prefetcher.

use crate::berti::BertiPrefetcher;
use crate::cplx::CplxPrefetcher;
use crate::pmp::PmpPrefetcher;
use crate::stream::StreamPrefetcher;
use crate::stride::StridePrefetcher;
use crate::temporal::{TemporalConfig, TemporalPrefetcher};
use crate::traits::Prefetcher;

/// Which composite prefetcher bundle to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositeKind {
    /// GS + CS + PMP — the paper's default composite (Figs. 8–10, 15–20).
    GsCsPmp,
    /// GS + Berti + CPLX — the alternate composite of Fig. 11.
    GsBertiCplx,
    /// GS + CS + PMP + temporal prefetcher — the Fig. 13/14 configuration.
    GsCsPmpTemporal {
        /// Metadata budget of the temporal prefetcher in bytes.
        metadata_bytes: u64,
    },
    /// PMP alone (non-composite baseline of Fig. 12).
    PmpOnly,
    /// Berti alone (non-composite baseline of Fig. 12).
    BertiOnly,
}

impl CompositeKind {
    /// Human-readable label used in harness output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CompositeKind::GsCsPmp => "GS+CS+PMP".to_string(),
            CompositeKind::GsBertiCplx => "GS+Berti+CPLX".to_string(),
            CompositeKind::GsCsPmpTemporal { metadata_bytes } => {
                format!("GS+CS+PMP+TP({}KB)", metadata_bytes / 1024)
            }
            CompositeKind::PmpOnly => "PMP".to_string(),
            CompositeKind::BertiOnly => "Berti".to_string(),
        }
    }

    /// Number of prefetchers in the bundle.
    #[must_use]
    pub const fn prefetcher_count(&self) -> usize {
        match self {
            CompositeKind::GsCsPmp | CompositeKind::GsBertiCplx => 3,
            CompositeKind::GsCsPmpTemporal { .. } => 4,
            CompositeKind::PmpOnly | CompositeKind::BertiOnly => 1,
        }
    }
}

/// Builds the prefetcher instances of a composite bundle.
///
/// The returned order is stable and is the priority order the static
/// selection algorithms (IPCP, DOL) assume: stream > stride > spatial
/// (> temporal).
#[must_use]
pub fn build_composite(kind: CompositeKind) -> Vec<Box<dyn Prefetcher>> {
    match kind {
        CompositeKind::GsCsPmp => vec![
            Box::new(StreamPrefetcher::default_config()),
            Box::new(StridePrefetcher::default_config()),
            Box::new(PmpPrefetcher::default_config()),
        ],
        CompositeKind::GsBertiCplx => vec![
            Box::new(StreamPrefetcher::default_config()),
            Box::new(BertiPrefetcher::default_config()),
            Box::new(CplxPrefetcher::default_config()),
        ],
        CompositeKind::GsCsPmpTemporal { metadata_bytes } => vec![
            Box::new(StreamPrefetcher::default_config()),
            Box::new(StridePrefetcher::default_config()),
            Box::new(PmpPrefetcher::default_config()),
            Box::new(TemporalPrefetcher::new(TemporalConfig { metadata_bytes, max_degree: 1 })),
        ],
        CompositeKind::PmpOnly => vec![Box::new(PmpPrefetcher::default_config())],
        CompositeKind::BertiOnly => vec![Box::new(BertiPrefetcher::default_config())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PrefetcherKind;

    #[test]
    fn default_composite_matches_table2() {
        let pfs = build_composite(CompositeKind::GsCsPmp);
        assert_eq!(pfs.len(), 3);
        assert_eq!(pfs[0].name(), "GS");
        assert_eq!(pfs[1].name(), "CS");
        assert_eq!(pfs[2].name(), "PMP");
        assert_eq!(CompositeKind::GsCsPmp.prefetcher_count(), 3);
    }

    #[test]
    fn alternate_composite() {
        let pfs = build_composite(CompositeKind::GsBertiCplx);
        let names: Vec<_> = pfs.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["GS", "Berti", "CPLX"]);
    }

    #[test]
    fn temporal_composite_has_temporal_last() {
        let kind = CompositeKind::GsCsPmpTemporal { metadata_bytes: 512 * 1024 };
        let pfs = build_composite(kind);
        assert_eq!(pfs.len(), 4);
        assert!(pfs[3].is_temporal());
        assert_eq!(pfs[3].kind(), PrefetcherKind::Temporal);
        assert_eq!(kind.label(), "GS+CS+PMP+TP(512KB)");
    }

    #[test]
    fn non_composite_bundles() {
        assert_eq!(build_composite(CompositeKind::PmpOnly).len(), 1);
        assert_eq!(build_composite(CompositeKind::BertiOnly)[0].name(), "Berti");
        assert_eq!(CompositeKind::PmpOnly.label(), "PMP");
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            CompositeKind::GsCsPmp.label(),
            CompositeKind::GsBertiCplx.label(),
            CompositeKind::PmpOnly.label(),
            CompositeKind::BertiOnly.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
