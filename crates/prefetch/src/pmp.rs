//! PMP — a spatial bit-pattern prefetcher (Table II: 16-entry Accumulation
//! Table, 64-entry Pattern History Table).
//!
//! PMP learns, per trigger (PC, page-offset) signature, which cache lines of
//! a 4 KiB page tend to be touched after the trigger access, by merging
//! per-page footprints into counter-based patterns. On the trigger access to
//! a new page it replays the learned pattern, prefetching the most likely
//! offsets. PMP is the aggressive spatial component of the paper's default
//! composite (GS + CS + PMP).

use alecto_types::{fold_pc, DemandAccess, LineAddr, PageAddr, Pc, LINES_PER_PAGE};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

const OFFSETS: usize = LINES_PER_PAGE as usize;

#[derive(Debug, Clone)]
struct AccumulationEntry {
    page: PageAddr,
    trigger_offset: u64,
    trigger_pc: Pc,
    footprint: u64,
    lru: u64,
}

#[derive(Debug, Clone)]
struct PatternEntry {
    signature: u32,
    counters: [u8; OFFSETS],
    lru: u64,
}

/// Configuration of the PMP prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmpConfig {
    /// Accumulation Table entries (Table II: 16).
    pub accumulation_entries: usize,
    /// Pattern History Table entries (Table II: 64).
    pub pht_entries: usize,
    /// Counter value required for an offset to be prefetched.
    pub counter_threshold: u8,
    /// Saturation value of the per-offset counters.
    pub counter_max: u8,
}

impl Default for PmpConfig {
    fn default() -> Self {
        Self { accumulation_entries: 16, pht_entries: 64, counter_threshold: 2, counter_max: 3 }
    }
}

/// The PMP spatial prefetcher.
#[derive(Debug, Clone)]
pub struct PmpPrefetcher {
    config: PmpConfig,
    accumulation: Vec<Option<AccumulationEntry>>,
    pht: Vec<Option<PatternEntry>>,
    lru_clock: u64,
    stats: TableStats,
}

impl PmpPrefetcher {
    /// Creates a PMP prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: PmpConfig) -> Self {
        Self {
            accumulation: vec![None; config.accumulation_entries],
            pht: vec![None; config.pht_entries],
            config,
            lru_clock: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a PMP prefetcher with the Table II configuration.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(PmpConfig::default())
    }

    /// Signature used to index the PHT: the folded PC of the trigger access.
    /// Footprints are rotated so the trigger offset becomes position 0, which
    /// is what makes the learned pattern position-independent within a page
    /// (the "merging similar patterns" idea of PMP).
    fn signature(pc: Pc, _trigger_offset: u64) -> u32 {
        fold_pc(pc, 10)
    }

    fn merge_into_pht(&mut self, entry: &AccumulationEntry) {
        let signature = Self::signature(entry.trigger_pc, entry.trigger_offset);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        self.stats.trainings += 1;
        let max = self.config.counter_max;
        // Rotate the footprint so that the trigger offset becomes position 0;
        // patterns become position-independent within the page.
        let rotate = entry.trigger_offset;
        let slot = if let Some(i) =
            self.pht.iter().position(|e| e.as_ref().map(|e| e.signature) == Some(signature))
        {
            i
        } else if let Some(i) = self.pht.iter().position(Option::is_none) {
            i
        } else {
            let victim = self
                .pht
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.as_ref().map(|e| e.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("PHT is non-empty");
            self.stats.evictions += 1;
            self.pht[victim] = None;
            victim
        };
        let pattern = self.pht[slot].get_or_insert(PatternEntry {
            signature,
            counters: [0; OFFSETS],
            lru: clock,
        });
        pattern.lru = clock;
        for bit in 0..OFFSETS as u64 {
            let rotated = ((bit + OFFSETS as u64 - rotate) % OFFSETS as u64) as usize;
            if entry.footprint & (1 << bit) != 0 {
                pattern.counters[rotated] = (pattern.counters[rotated] + 1).min(max);
            } else {
                pattern.counters[rotated] = pattern.counters[rotated].saturating_sub(1);
            }
        }
    }

    fn predict(
        &mut self,
        pc: Pc,
        page: PageAddr,
        trigger_offset: u64,
        degree: u32,
        out: &mut Vec<LineAddr>,
    ) {
        let signature = Self::signature(pc, trigger_offset);
        self.stats.lookups += 1;
        let Some(pattern) = self.pht.iter().flatten().find(|e| e.signature == signature).cloned()
        else {
            self.stats.misses += 1;
            return;
        };
        self.stats.hits += 1;
        // Collect offsets above threshold, strongest and nearest first.
        let mut candidates: Vec<(u8, u64)> = pattern
            .counters
            .iter()
            .enumerate()
            .skip(1) // position 0 is the trigger itself
            .filter(|(_, &c)| c >= self.config.counter_threshold)
            .map(|(i, &c)| (c, i as u64))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, rel) in candidates.into_iter().take(degree as usize) {
            let offset = (trigger_offset + rel) % OFFSETS as u64;
            out.push(page.line(offset));
            self.stats.candidates_emitted += 1;
        }
    }
}

impl Prefetcher for PmpPrefetcher {
    fn name(&self) -> &'static str {
        "PMP"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Spatial
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        let page = line.page();
        let offset = line.index_in_page();
        self.lru_clock += 1;
        let clock = self.lru_clock;

        if let Some(entry) = self.accumulation.iter_mut().flatten().find(|e| e.page == page) {
            entry.footprint |= 1 << offset;
            entry.lru = clock;
            return;
        }

        // New page: evict an accumulation entry (learning its pattern), then
        // allocate and predict from the PHT.
        let slot = if let Some(i) = self.accumulation.iter().position(Option::is_none) {
            i
        } else {
            let victim = self
                .accumulation
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.as_ref().map(|e| e.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("accumulation table is non-empty");
            let old = self.accumulation[victim].take().expect("victim was occupied");
            self.merge_into_pht(&old);
            victim
        };
        self.accumulation[slot] = Some(AccumulationEntry {
            page,
            trigger_offset: offset,
            trigger_pc: access.pc,
            footprint: 1 << offset,
            lru: clock,
        });
        if degree > 0 {
            self.predict(access.pc, page, offset, degree, out);
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        let line = access.line();
        let page = line.page();
        let in_accumulation = self.accumulation.iter().flatten().any(|e| e.page == page);
        if in_accumulation {
            return true;
        }
        let signature = Self::signature(access.pc, line.index_in_page());
        self.pht.iter().flatten().any(|e| {
            e.signature == signature
                && e.counters.iter().filter(|&&c| c >= self.config.counter_threshold).count() > 1
        })
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // Accumulation entry: page tag 36 b + footprint 64 b + trigger offset 6 b
        // + PC hash 10 b + LRU 4 b. PHT entry: signature 10 b + 64×2 b counters + LRU 6 b.
        (self.config.accumulation_entries as u64) * (36 + 64 + 6 + 10 + 4)
            + (self.config.pht_entries as u64) * (10 + 2 * OFFSETS as u64 + 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    /// Touch the given offsets (in lines) of page `page_no` under `pc`.
    fn touch_page(
        pf: &mut PmpPrefetcher,
        pc: u64,
        page_no: u64,
        offsets: &[u64],
        degree: u32,
    ) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for &o in offsets {
            let addr = page_no * 4096 + o * 64;
            pf.train_and_predict(&access(pc, addr), degree, &mut out);
        }
        out
    }

    #[test]
    fn repeated_footprint_is_replayed_on_new_page() {
        let mut pf = PmpPrefetcher::default_config();
        // Train the same footprint {0,1,2,3} over many pages so the victim
        // merge path runs and counters saturate.
        for page in 0..40u64 {
            touch_page(&mut pf, 0x700, page, &[0, 1, 2, 3], 0);
        }
        // Trigger access to a brand-new page: expect offsets 1..3 predicted.
        let out = touch_page(&mut pf, 0x700, 1000, &[0], 8);
        let page = PageAddr::new(1000);
        assert!(out.contains(&page.line(1)));
        assert!(out.contains(&page.line(2)));
        assert!(out.contains(&page.line(3)));
    }

    #[test]
    fn degree_limits_emitted_candidates() {
        let mut pf = PmpPrefetcher::default_config();
        for page in 0..40u64 {
            touch_page(&mut pf, 0x700, page, &[0, 1, 2, 3, 4, 5, 6, 7], 0);
        }
        let out = touch_page(&mut pf, 0x700, 2000, &[0], 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn pattern_is_position_independent() {
        let mut pf = PmpPrefetcher::default_config();
        // Train footprints anchored at offset 10: {10, 12, 14}.
        for page in 0..40u64 {
            touch_page(&mut pf, 0x704, page, &[10, 12, 14], 0);
        }
        // Trigger at offset 20 in a new page: the +2/+4 pattern should follow.
        let out = touch_page(&mut pf, 0x704, 3000, &[20], 4);
        let page = PageAddr::new(3000);
        assert!(out.contains(&page.line(22)));
        assert!(out.contains(&page.line(24)));
    }

    #[test]
    fn unknown_signature_misses_in_pht() {
        let mut pf = PmpPrefetcher::default_config();
        let out = touch_page(&mut pf, 0x708, 1, &[0], 4);
        assert!(out.is_empty());
        assert_eq!(pf.table_stats().misses, 1);
    }

    #[test]
    fn noisy_offsets_decay_out_of_pattern() {
        let mut pf = PmpPrefetcher::default_config();
        // One early page includes a noisy offset 30; later pages do not.
        touch_page(&mut pf, 0x70c, 0, &[0, 1, 30], 0);
        for page in 1..40u64 {
            touch_page(&mut pf, 0x70c, page, &[0, 1], 0);
        }
        let out = touch_page(&mut pf, 0x70c, 5000, &[0], 8);
        let page = PageAddr::new(5000);
        assert!(out.contains(&page.line(1)));
        assert!(!out.contains(&page.line(30)), "noisy offset should have decayed");
    }

    #[test]
    fn stats_and_storage() {
        let mut pf = PmpPrefetcher::default_config();
        touch_page(&mut pf, 0x710, 0, &[0, 1], 2);
        assert!(pf.storage_bits() > 0);
        assert_eq!(pf.name(), "PMP");
        assert_eq!(pf.kind(), PrefetcherKind::Spatial);
        pf.reset_stats();
        assert_eq!(pf.table_stats().lookups, 0);
    }
}
