//! CPLX — the complex-stride component of IPCP (used in the alternate
//! composite of Fig. 11).
//!
//! CPLX predicts *varying* delta sequences (e.g. +1, +1, +1, +4, repeating)
//! that defeat a constant-stride prefetcher. It hashes the recent delta
//! history of each PC into a signature and looks the signature up in a Delta
//! Prediction Table (DPT) that stores the next expected delta with a
//! confidence counter, in the spirit of VLDP.

use alecto_types::{DemandAccess, LineAddr, Pc};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

const SIGNATURE_DELTAS: usize = 3;

#[derive(Debug, Clone, Copy)]
struct IpEntry {
    tag: Pc,
    last_line: LineAddr,
    recent_deltas: [i64; SIGNATURE_DELTAS],
    valid_deltas: usize,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct DptEntry {
    signature: u32,
    predicted_delta: i64,
    confidence: u8,
    lru: u64,
}

/// Configuration of the CPLX prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CplxConfig {
    /// Per-PC tracking entries.
    pub ip_entries: usize,
    /// Delta Prediction Table entries.
    pub dpt_entries: usize,
    /// Confidence needed before prefetching.
    pub confidence_threshold: u8,
    /// Confidence saturation value.
    pub confidence_max: u8,
}

impl Default for CplxConfig {
    fn default() -> Self {
        Self { ip_entries: 64, dpt_entries: 128, confidence_threshold: 2, confidence_max: 7 }
    }
}

/// The CPLX complex-stride prefetcher.
#[derive(Debug, Clone)]
pub struct CplxPrefetcher {
    config: CplxConfig,
    ip_table: Vec<Option<IpEntry>>,
    dpt: Vec<Option<DptEntry>>,
    lru_clock: u64,
    stats: TableStats,
}

impl CplxPrefetcher {
    /// Creates a CPLX prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: CplxConfig) -> Self {
        Self {
            ip_table: vec![None; config.ip_entries],
            dpt: vec![None; config.dpt_entries],
            config,
            lru_clock: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a CPLX prefetcher with the default configuration.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(CplxConfig::default())
    }

    fn signature(deltas: &[i64; SIGNATURE_DELTAS]) -> u32 {
        // Order-sensitive multiplicative fold of the (truncated) deltas into a
        // 12-bit signature; a plain shift-XOR here aliases short histories
        // like (1,1,1) and (4,1,1).
        let mut sig: u32 = 0;
        for &d in deltas {
            let folded = ((d & 0x7f) as u32) ^ (((d >> 7) & 0x7f) as u32);
            sig = sig.wrapping_mul(31).wrapping_add(folded.wrapping_add(1));
        }
        sig & 0xfff
    }

    fn ip_slot(&mut self, pc: Pc) -> (usize, bool) {
        if let Some(i) = self.ip_table.iter().position(|e| e.map(|e| e.tag) == Some(pc)) {
            return (i, true);
        }
        if let Some(i) = self.ip_table.iter().position(Option::is_none) {
            return (i, false);
        }
        let victim = self
            .ip_table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("IP table non-empty");
        self.stats.evictions += 1;
        (victim, false)
    }

    fn dpt_update(&mut self, signature: u32, observed_delta: i64) {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let max = self.config.confidence_max;
        if let Some(e) = self.dpt.iter_mut().flatten().find(|e| e.signature == signature) {
            e.lru = clock;
            if e.predicted_delta == observed_delta {
                e.confidence = (e.confidence + 1).min(max);
            } else if e.confidence > 0 {
                e.confidence -= 1;
            } else {
                e.predicted_delta = observed_delta;
                e.confidence = 1;
            }
            return;
        }
        let slot = if let Some(i) = self.dpt.iter().position(Option::is_none) {
            i
        } else {
            let victim = self
                .dpt
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("DPT non-empty");
            self.stats.evictions += 1;
            victim
        };
        self.dpt[slot] = Some(DptEntry {
            signature,
            predicted_delta: observed_delta,
            confidence: 1,
            lru: clock,
        });
    }

    fn dpt_lookup(&mut self, signature: u32) -> Option<(i64, u8)> {
        self.stats.lookups += 1;
        match self.dpt.iter().flatten().find(|e| e.signature == signature) {
            Some(e) => {
                self.stats.hits += 1;
                Some((e.predicted_delta, e.confidence))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }
}

impl Prefetcher for CplxPrefetcher {
    fn name(&self) -> &'static str {
        "CPLX"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::DeltaComplex
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        self.lru_clock += 1;
        let clock = self.lru_clock;
        self.stats.trainings += 1;
        let (slot, hit) = self.ip_slot(access.pc);
        if !hit {
            self.ip_table[slot] = Some(IpEntry {
                tag: access.pc,
                last_line: line,
                recent_deltas: [0; SIGNATURE_DELTAS],
                valid_deltas: 0,
                lru: clock,
            });
            return;
        }
        let entry = self.ip_table[slot].as_mut().expect("hit entries are present");
        entry.lru = clock;
        let delta = line.delta_from(entry.last_line);
        entry.last_line = line;
        if delta == 0 {
            return;
        }

        // Train the DPT with the signature of the *previous* deltas → this delta.
        if entry.valid_deltas == SIGNATURE_DELTAS {
            let sig = Self::signature(&entry.recent_deltas);
            self.dpt_update(sig, delta);
        }
        // Shift the delta history.
        let mut deltas = self.ip_table[slot].as_ref().unwrap().recent_deltas;
        deltas.rotate_left(1);
        deltas[SIGNATURE_DELTAS - 1] = delta;
        {
            let entry = self.ip_table[slot].as_mut().unwrap();
            entry.recent_deltas = deltas;
            entry.valid_deltas = (entry.valid_deltas + 1).min(SIGNATURE_DELTAS);
        }

        if degree == 0 || self.ip_table[slot].as_ref().unwrap().valid_deltas < SIGNATURE_DELTAS {
            return;
        }
        // Chained prediction: follow the DPT from the current signature for up
        // to `degree` steps.
        let mut sig_deltas = deltas;
        let mut current = line;
        for _ in 0..degree {
            let sig = Self::signature(&sig_deltas);
            let Some((next_delta, confidence)) = self.dpt_lookup(sig) else {
                break;
            };
            if confidence < self.config.confidence_threshold || next_delta == 0 {
                break;
            }
            current = current.offset(next_delta);
            out.push(current);
            self.stats.candidates_emitted += 1;
            sig_deltas.rotate_left(1);
            sig_deltas[SIGNATURE_DELTAS - 1] = next_delta;
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        self.ip_table.iter().flatten().any(|e| {
            e.tag == access.pc && e.valid_deltas == SIGNATURE_DELTAS && {
                let sig = Self::signature(&e.recent_deltas);
                self.dpt
                    .iter()
                    .flatten()
                    .any(|d| d.signature == sig && d.confidence >= self.config.confidence_threshold)
            }
        })
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // IP entry: tag 16 b + last line 58 b + 2×12 b deltas + 2 b valid + 6 b LRU.
        // DPT entry: signature 12 b + delta 12 b + confidence 3 b + LRU 7 b.
        (self.config.ip_entries as u64) * (16 + 58 + 24 + 2 + 6)
            + (self.config.dpt_entries as u64) * (12 + 12 + 3 + 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    /// Drives a repeating delta sequence (in lines) through the prefetcher.
    fn drive(
        pf: &mut CplxPrefetcher,
        pc: u64,
        deltas: &[i64],
        reps: usize,
        degree: u32,
    ) -> Vec<LineAddr> {
        let mut out = Vec::new();
        let mut line: i64 = 1 << 20;
        for _ in 0..reps {
            for &d in deltas {
                out.clear();
                pf.train_and_predict(&access(pc, (line as u64) * 64), degree, &mut out);
                line += d;
            }
        }
        out
    }

    #[test]
    fn repeating_complex_pattern_is_predicted() {
        let mut pf = CplxPrefetcher::default_config();
        let out = drive(&mut pf, 0xa00, &[1, 1, 1, 4], 20, 3);
        assert!(!out.is_empty(), "repeating +1,+1,+1,+4 should be predictable");
    }

    #[test]
    fn chained_predictions_follow_the_sequence() {
        let mut pf = CplxPrefetcher::default_config();
        // Strict +2,+3 alternation.
        drive(&mut pf, 0xa04, &[2, 3], 30, 0);
        let mut out = Vec::new();
        // Continue the pattern explicitly so we know the phase: after ..+2,+3
        // the next deltas are +2 then +3.
        let base: u64 = 1 << 21;
        let seq = [0i64, 2, 5, 7, 10, 12, 15];
        let mut last = 0;
        for &s in &seq {
            out.clear();
            pf.train_and_predict(&access(0xa04, (base + s as u64) * 64), 2, &mut out);
            last = base + s as u64;
        }
        let last_line = LineAddr::new(last);
        assert_eq!(out[0], last_line.offset(2));
        if out.len() > 1 {
            assert_eq!(out[1], last_line.offset(5));
        }
    }

    #[test]
    fn constant_stride_also_handled() {
        let mut pf = CplxPrefetcher::default_config();
        let out = drive(&mut pf, 0xa08, &[7], 10, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn random_deltas_not_predicted() {
        // A non-repeating pseudo-random delta walk: no signature ever recurs
        // with a consistent successor, so nothing should be predicted.
        let mut pf = CplxPrefetcher::default_config();
        let mut out = Vec::new();
        let mut line: i64 = 1 << 22;
        for i in 0..64i64 {
            out.clear();
            pf.train_and_predict(&access(0xa0c, (line as u64) * 64), 2, &mut out);
            line += (i * i * 7 + 13) % 97 - 48;
        }
        assert!(out.is_empty(), "non-repeating deltas should not be predicted: {out:?}");
    }

    #[test]
    fn stats_track_dpt_lookups() {
        let mut pf = CplxPrefetcher::default_config();
        drive(&mut pf, 0xa10, &[1, 2], 10, 2);
        let s = pf.table_stats();
        assert!(s.lookups > 0);
        assert!(s.trainings > 0);
        pf.reset_stats();
        assert_eq!(pf.table_stats().lookups, 0);
    }

    #[test]
    fn name_kind_storage() {
        let pf = CplxPrefetcher::default_config();
        assert_eq!(pf.name(), "CPLX");
        assert_eq!(pf.kind(), PrefetcherKind::DeltaComplex);
        assert!(pf.storage_bits() > 0);
    }
}
