//! Berti — an accurate local-delta prefetcher (used in the alternate
//! composite of Fig. 11).
//!
//! Berti keeps, per memory-access instruction, a short history of recently
//! accessed lines and a small table of candidate deltas with confidence
//! counters. A delta gains confidence whenever the current access equals an
//! earlier access plus that delta ("the delta would have been a timely and
//! accurate prefetch"). Only high-confidence deltas are used, which is what
//! makes Berti conservative and accurate compared to PMP/CPLX (§VI-B).

use alecto_types::{DemandAccess, LineAddr, Pc};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

const HISTORY_LEN: usize = 8;
const DELTAS_PER_PC: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct DeltaEntry {
    delta: i64,
    confidence: u8,
}

#[derive(Debug, Clone)]
struct BertiEntry {
    tag: Pc,
    history: Vec<LineAddr>,
    deltas: [DeltaEntry; DELTAS_PER_PC],
    lru: u64,
}

/// Configuration of the Berti prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertiConfig {
    /// Number of per-PC entries.
    pub entries: usize,
    /// Confidence required before a delta is used for prefetching.
    pub confidence_threshold: u8,
    /// Saturation value of delta confidence counters.
    pub confidence_max: u8,
}

impl Default for BertiConfig {
    fn default() -> Self {
        Self { entries: 64, confidence_threshold: 4, confidence_max: 15 }
    }
}

/// The Berti local-delta prefetcher.
#[derive(Debug, Clone)]
pub struct BertiPrefetcher {
    config: BertiConfig,
    table: Vec<Option<BertiEntry>>,
    lru_clock: u64,
    stats: TableStats,
}

impl BertiPrefetcher {
    /// Creates a Berti prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: BertiConfig) -> Self {
        Self {
            table: vec![None; config.entries],
            config,
            lru_clock: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a Berti prefetcher with the default configuration.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(BertiConfig::default())
    }

    fn slot_for(&mut self, pc: Pc) -> (usize, bool) {
        if let Some(i) = self.table.iter().position(|e| e.as_ref().map(|e| e.tag) == Some(pc)) {
            return (i, true);
        }
        if let Some(i) = self.table.iter().position(Option::is_none) {
            return (i, false);
        }
        let victim = self
            .table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.as_ref().map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("table non-empty");
        self.stats.evictions += 1;
        (victim, false)
    }
}

impl Prefetcher for BertiPrefetcher {
    fn name(&self) -> &'static str {
        "Berti"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Spatial
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        self.lru_clock += 1;
        let clock = self.lru_clock;
        self.stats.lookups += 1;
        self.stats.trainings += 1;
        let threshold = self.config.confidence_threshold;
        let max = self.config.confidence_max;
        let (slot, hit) = self.slot_for(access.pc);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.table[slot] = Some(BertiEntry {
                tag: access.pc,
                history: Vec::with_capacity(HISTORY_LEN),
                deltas: [DeltaEntry::default(); DELTAS_PER_PC],
                lru: clock,
            });
        }
        let entry = self.table[slot].as_mut().expect("slot filled above");
        entry.lru = clock;

        // Reward every delta that would have predicted this access from an
        // earlier history entry (older entries imply better timeliness and
        // are rewarded slightly more).
        for (age, &past) in entry.history.iter().rev().enumerate() {
            let delta = line.delta_from(past);
            if delta == 0 {
                continue;
            }
            let reward: u8 = if age >= 2 { 2 } else { 1 };
            if let Some(d) = entry.deltas.iter_mut().find(|d| d.confidence > 0 && d.delta == delta)
            {
                d.confidence = (d.confidence + reward).min(max);
            } else if let Some(free) = entry.deltas.iter_mut().min_by_key(|d| d.confidence) {
                if free.confidence == 0 {
                    *free = DeltaEntry { delta, confidence: reward };
                } else {
                    // Gentle replacement pressure on the weakest delta.
                    free.confidence -= 1;
                }
            }
        }

        entry.history.push(line);
        if entry.history.len() > HISTORY_LEN {
            entry.history.remove(0);
        }

        if degree == 0 {
            return;
        }
        let mut best: Vec<DeltaEntry> = entry
            .deltas
            .iter()
            .copied()
            .filter(|d| d.confidence >= threshold && d.delta != 0)
            .collect();
        best.sort_by(|a, b| {
            b.confidence.cmp(&a.confidence).then(a.delta.abs().cmp(&b.delta.abs()))
        });
        for d in best.into_iter().take(degree as usize) {
            out.push(line.offset(d.delta));
            self.stats.candidates_emitted += 1;
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        self.table.iter().flatten().any(|e| {
            e.tag == access.pc
                && e.deltas.iter().any(|d| d.confidence >= self.config.confidence_threshold)
        })
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: tag 16 b + 8 history lines × 58 b + 8 deltas × (12 + 4) b + LRU 6 b.
        (self.config.entries as u64)
            * (16 + (HISTORY_LEN as u64) * 58 + (DELTAS_PER_PC as u64) * 16 + 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    #[test]
    fn constant_delta_learned_and_predicted() {
        let mut pf = BertiPrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..12u64 {
            out.clear();
            pf.train_and_predict(&access(0x900, 0x10_0000 + i * 64), 2, &mut out);
        }
        // A +1-line walk: every learned delta is a small positive multiple of
        // the stride (Berti prefers the farther, more timely deltas).
        let last = Addr::new(0x10_0000 + 11 * 64).line();
        assert_eq!(out.len(), 2);
        for line in &out {
            let delta = line.delta_from(last);
            assert!(
                (1..=8).contains(&delta),
                "predicted delta {delta} should be ahead of the walk"
            );
        }
    }

    #[test]
    fn multi_line_delta_learned() {
        let mut pf = BertiPrefetcher::default_config();
        let mut out = Vec::new();
        // Stride of 5 lines.
        for i in 0..12u64 {
            out.clear();
            pf.train_and_predict(&access(0x904, 0x20_0000 + i * 5 * 64), 1, &mut out);
        }
        let last = Addr::new(0x20_0000 + 11 * 5 * 64).line();
        assert_eq!(out.len(), 1);
        let delta = out[0].delta_from(last);
        assert!(
            delta > 0 && delta % 5 == 0,
            "prediction must follow the 5-line stride, got {delta}"
        );
    }

    #[test]
    fn irregular_pattern_stays_quiet() {
        let mut pf = BertiPrefetcher::default_config();
        let mut out = Vec::new();
        let addrs =
            [0x1000u64, 0x9_0000, 0x3_3000, 0x70_0400, 0x12_1000, 0x5000, 0x44_0000, 0x2_0000];
        for &a in &addrs {
            out.clear();
            pf.train_and_predict(&access(0x908, a), 2, &mut out);
        }
        assert!(out.is_empty(), "no repeated delta means no prefetch: {out:?}");
    }

    #[test]
    fn degree_zero_only_trains() {
        let mut pf = BertiPrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..12u64 {
            pf.train_and_predict(&access(0x90c, 0x30_0000 + i * 64), 0, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(pf.table_stats().trainings, 12);
        // Once allowed to emit, the learned delta appears immediately.
        pf.train_and_predict(&access(0x90c, 0x30_0000 + 12 * 64), 1, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut pf = BertiPrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..12u64 {
            out.clear();
            pf.train_and_predict(&access(0x910, 0x40_0000 + i * 64), 1, &mut out);
            pf.train_and_predict(&access(0x914, 0x80_0000 + i * 3 * 64), 1, &mut out);
        }
        // The +3-line PC predicts a multiple of 3 lines, uncontaminated by the
        // +1-line PC trained in the same table.
        out.clear();
        pf.train_and_predict(&access(0x914, 0x80_0000 + 12 * 3 * 64), 1, &mut out);
        let last = Addr::new(0x80_0000 + 12 * 3 * 64).line();
        assert_eq!(out.len(), 1);
        let delta = out[0].delta_from(last);
        assert!(delta > 0 && delta % 3 == 0, "delta {delta} should be a positive multiple of 3");
    }

    #[test]
    fn eviction_and_storage_accounting() {
        let mut pf = BertiPrefetcher::new(BertiConfig { entries: 4, ..BertiConfig::default() });
        let mut out = Vec::new();
        for pc in 0..10u64 {
            pf.train_and_predict(&access(pc, pc * 0x1000), 1, &mut out);
        }
        assert!(pf.table_stats().evictions >= 6);
        assert!(pf.storage_bits() > 0);
        assert_eq!(pf.name(), "Berti");
    }
}
