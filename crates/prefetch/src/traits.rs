//! The [`Prefetcher`] trait and the bookkeeping every prefetcher maintains
//! about its internal metadata table.

use alecto_types::{DemandAccess, LineAddr};

/// The broad pattern family a prefetcher targets. Alecto uses this to apply
//  the temporal-prefetcher special case of transition ① (§IV-A): when both a
/// temporal and a non-temporal prefetcher qualify for promotion, only the
/// non-temporal one is promoted, to conserve temporal metadata storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// Monotonic, dense streams (GS).
    Stream,
    /// Constant-stride patterns (CS).
    Stride,
    /// Spatial bit-pattern prefetchers over pages/regions (PMP, Berti).
    Spatial,
    /// Complex / varying delta sequences (CPLX).
    DeltaComplex,
    /// Temporal (address-correlation) prefetchers with large metadata tables.
    Temporal,
}

impl PrefetcherKind {
    /// Whether this prefetcher family is a temporal prefetcher.
    #[must_use]
    pub const fn is_temporal(self) -> bool {
        matches!(self, PrefetcherKind::Temporal)
    }
}

/// Access statistics of a prefetcher's internal metadata table.
///
/// * `misses` feed Fig. 1 (prefetcher table misses with/without DDRA),
/// * `trainings` feed Fig. 18 (training occurrences, the proxy the paper uses
///   for prefetcher dynamic energy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of table lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that missed (no entry for the index/tag).
    pub misses: u64,
    /// Training events that wrote the table.
    pub trainings: u64,
    /// Valid entries displaced to make room for new ones.
    pub evictions: u64,
    /// Prefetch candidate lines produced.
    pub candidates_emitted: u64,
}

impl TableStats {
    /// Table hit ratio in `[0, 1]`; zero when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &TableStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.trainings += other.trainings;
        self.evictions += other.evictions;
        self.candidates_emitted += other.candidates_emitted;
    }
}

/// A hardware prefetcher that is trained on demand accesses and produces
/// candidate prefetch lines.
///
/// The trait is object safe: composites hold `Vec<Box<dyn Prefetcher>>`.
/// `Send` is a supertrait so that a whole simulated system (which owns its
/// prefetchers as trait objects) can be constructed and run on a worker
/// thread of the parallel experiment engine.
pub trait Prefetcher: Send {
    /// Short, stable display name (e.g. `"GS"`, `"PMP"`).
    fn name(&self) -> &'static str;

    /// Pattern family.
    fn kind(&self) -> PrefetcherKind;

    /// Trains the prefetcher on `access` and appends up to `degree` candidate
    /// cache lines to `out`. Candidates must be ordered from most to least
    /// confident so that callers can truncate to a smaller degree.
    ///
    /// A `degree` of zero performs training without emitting candidates
    /// (used by selection schemes that throttle output but not training).
    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>);

    /// Non-destructive query: does this prefetcher believe the access belongs
    /// to a pattern it can handle (e.g. a confident table entry exists)?
    ///
    /// DOL's coordinator uses this to decide whether to stop passing a demand
    /// request down its static priority chain; the default is a conservative
    /// `false` ("not mine").
    fn probe(&self, access: &DemandAccess) -> bool {
        let _ = access;
        false
    }

    /// Statistics of the internal metadata table.
    fn table_stats(&self) -> &TableStats;

    /// Clears statistics (not the table contents), used between warm-up and
    /// measurement phases.
    fn reset_stats(&mut self);

    /// Storage requirement of the prefetcher's metadata in bits, for the
    /// Table III-style storage accounting.
    fn storage_bits(&self) -> u64;

    /// Whether this is a temporal prefetcher (default: derived from `kind`).
    fn is_temporal(&self) -> bool {
        self.kind().is_temporal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_stats_ratio_and_merge() {
        let mut a = TableStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            trainings: 10,
            evictions: 1,
            candidates_emitted: 5,
        };
        assert!((a.hit_ratio() - 0.7).abs() < 1e-12);
        let b = TableStats {
            lookups: 10,
            hits: 3,
            misses: 7,
            trainings: 2,
            evictions: 0,
            candidates_emitted: 1,
        };
        a.merge(&b);
        assert_eq!(a.lookups, 20);
        assert_eq!(a.hits, 10);
        assert_eq!(a.misses, 10);
        assert_eq!(a.trainings, 12);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.candidates_emitted, 6);
        assert_eq!(TableStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn kind_temporal_flag() {
        assert!(PrefetcherKind::Temporal.is_temporal());
        assert!(!PrefetcherKind::Stream.is_temporal());
        assert!(!PrefetcherKind::Spatial.is_temporal());
    }
}
