//! CS — the constant-stride component of IPCP (Table II: 64-entry IP table).
//!
//! Each memory-access instruction (PC) owns one entry tracking its last
//! accessed line, the last observed stride and a two-bit confidence counter.
//! Once the same stride repeats, the prefetcher issues `degree` prefetches
//! along that stride.

use alecto_types::{DemandAccess, LineAddr, Pc, SaturatingCounter};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    tag: Pc,
    last_line: LineAddr,
    stride: i64,
    confidence: SaturatingCounter,
    lru: u64,
}

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of IP-table entries (Table II: 64).
    pub entries: usize,
    /// Confidence needed before prefetching (2 of a 2-bit counter).
    pub confidence_threshold: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        Self { entries: 64, confidence_threshold: 2 }
    }
}

/// The CS constant-stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StrideConfig,
    table: Vec<Option<StrideEntry>>,
    lru_clock: u64,
    stats: TableStats,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: StrideConfig) -> Self {
        Self {
            table: vec![None; config.entries],
            config,
            lru_clock: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a stride prefetcher with the Table II configuration.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(StrideConfig::default())
    }

    fn find_slot(&mut self, pc: Pc) -> (usize, bool) {
        // Fully-associative with LRU replacement, matching the small IP table.
        if let Some(i) = self.table.iter().position(|e| e.map(|e| e.tag) == Some(pc)) {
            return (i, true);
        }
        if let Some(i) = self.table.iter().position(Option::is_none) {
            return (i, false);
        }
        let victim = self
            .table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("table is non-empty");
        self.stats.evictions += 1;
        (victim, false)
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "CS"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Stride
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        self.lru_clock += 1;
        self.stats.lookups += 1;
        self.stats.trainings += 1;
        let (slot, hit) = self.find_slot(access.pc);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.table[slot] = Some(StrideEntry {
                tag: access.pc,
                last_line: line,
                stride: 0,
                confidence: SaturatingCounter::with_bits(2),
                lru: self.lru_clock,
            });
            return;
        }
        let entry = self.table[slot].as_mut().expect("hit entries are present");
        entry.lru = self.lru_clock;
        let new_stride = line.delta_from(entry.last_line);
        if new_stride == 0 {
            // Same-line re-reference carries no stride information.
            return;
        }
        if new_stride == entry.stride {
            entry.confidence.increment();
        } else {
            entry.stride = new_stride;
            entry.confidence.reset();
            entry.confidence.increment();
        }
        entry.last_line = line;
        if entry.confidence.value() >= self.config.confidence_threshold && entry.stride != 0 {
            let stride = entry.stride;
            for i in 1..=i64::from(degree) {
                out.push(line.offset(stride * i));
            }
            self.stats.candidates_emitted += u64::from(degree);
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        self.table
            .iter()
            .flatten()
            .any(|e| e.tag == access.pc && e.confidence.value() >= self.config.confidence_threshold)
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: tag (16 b folded PC), last line (58 b), stride (12 b),
        // confidence (2 b), LRU (6 b) — the same ballpark as IPCP's CS.
        (self.config.entries as u64) * (16 + 58 + 12 + 2 + 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    #[test]
    fn constant_stride_is_learned() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..4u64 {
            out.clear();
            pf.train_and_predict(&access(0x10, 0x1000 + i * 128), 3, &mut out);
        }
        // 128 B stride = 2 lines; expect next lines at +2, +4, +6 lines.
        let base = Addr::new(0x1000 + 3 * 128).line();
        assert_eq!(out, vec![base.offset(2), base.offset(4), base.offset(6)]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for i in (0..5u64).rev() {
            out.clear();
            pf.train_and_predict(&access(0x20, 0x8000 + i * 64), 2, &mut out);
        }
        let base = Addr::new(0x8000).line();
        assert_eq!(out, vec![base.offset(-1), base.offset(-2)]);
    }

    #[test]
    fn changing_stride_resets_confidence() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        // Establish stride of 1 line.
        for i in 0..3u64 {
            pf.train_and_predict(&access(0x30, 0x1000 + i * 64), 2, &mut out);
        }
        out.clear();
        // Break the pattern: big jump. Confidence resets, no prefetch.
        pf.train_and_predict(&access(0x30, 0x9000), 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degree_zero_trains_without_output() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..5u64 {
            pf.train_and_predict(&access(0x40, 0x1000 + i * 64), 0, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(pf.table_stats().trainings, 5);
    }

    #[test]
    fn table_miss_counted_for_new_pcs() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for pc in 0..10u64 {
            pf.train_and_predict(&access(pc, pc * 0x100), 2, &mut out);
        }
        assert_eq!(pf.table_stats().misses, 10);
        assert_eq!(pf.table_stats().hits, 0);
    }

    #[test]
    fn capacity_evictions_happen() {
        let mut pf = StridePrefetcher::new(StrideConfig { entries: 4, confidence_threshold: 2 });
        let mut out = Vec::new();
        for pc in 0..8u64 {
            pf.train_and_predict(&access(pc, 0x1000), 1, &mut out);
        }
        assert!(pf.table_stats().evictions >= 4);
    }

    #[test]
    fn same_line_rereference_is_ignored() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for _ in 0..6 {
            pf.train_and_predict(&access(0x50, 0x2000), 4, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stats_reset_keeps_table() {
        let mut pf = StridePrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..3u64 {
            pf.train_and_predict(&access(0x60, 0x1000 + i * 64), 1, &mut out);
        }
        pf.reset_stats();
        assert_eq!(pf.table_stats().trainings, 0);
        out.clear();
        // The learned stride survives the stats reset.
        pf.train_and_predict(&access(0x60, 0x1000 + 3 * 64), 1, &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn storage_is_positive_and_scales() {
        let small = StridePrefetcher::new(StrideConfig { entries: 16, confidence_threshold: 2 });
        let big = StridePrefetcher::default_config();
        assert!(big.storage_bits() > small.storage_bits());
        assert_eq!(big.kind(), PrefetcherKind::Stride);
        assert_eq!(big.name(), "CS");
        assert!(!big.is_temporal());
    }
}
