//! GS — the global-stream component of IPCP (Table II: 64-entry IP table plus
//! an 8-entry Region Stream Table).
//!
//! A PC is classified as a stream PC when its accesses walk a region densely
//! and monotonically. The Region Stream Table (RST) tracks recently touched
//! 2 KiB regions and their access density/direction; the IP table remembers
//! whether a PC has been observed following such a stream. Stream PCs
//! prefetch the next `degree` sequential lines in the stream direction.

use alecto_types::{DemandAccess, LineAddr, Pc, SaturatingCounter};

use crate::traits::{Prefetcher, PrefetcherKind, TableStats};

/// Lines per tracked region (2 KiB regions of 64 B lines).
const REGION_LINES: u64 = 32;

#[derive(Debug, Clone, Copy)]
struct IpEntry {
    tag: Pc,
    last_line: LineAddr,
    direction_up: bool,
    confidence: SaturatingCounter,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct RegionEntry {
    region: u64,
    touched: u32,
    last_index: u64,
    ascending: SaturatingCounter,
    descending: SaturatingCounter,
    lru: u64,
}

/// Configuration of the stream prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// IP-table entries (Table II: 64).
    pub ip_entries: usize,
    /// Region Stream Table entries (Table II: 8).
    pub rst_entries: usize,
    /// Number of touched lines within a region before it is declared a stream.
    pub density_threshold: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { ip_entries: 64, rst_entries: 8, density_threshold: 4 }
    }
}

/// The GS global-stream prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: StreamConfig,
    ip_table: Vec<Option<IpEntry>>,
    rst: Vec<Option<RegionEntry>>,
    lru_clock: u64,
    stats: TableStats,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with the given configuration.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        Self {
            ip_table: vec![None; config.ip_entries],
            rst: vec![None; config.rst_entries],
            config,
            lru_clock: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a stream prefetcher with the Table II configuration.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(StreamConfig::default())
    }

    fn region_of(line: LineAddr) -> (u64, u64) {
        (line.raw() / REGION_LINES, line.raw() % REGION_LINES)
    }

    /// Updates the RST and reports whether the region currently looks like a
    /// dense stream and in which direction.
    fn update_region(&mut self, line: LineAddr) -> Option<bool> {
        let (region, index) = Self::region_of(line);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        if let Some(e) = self.rst.iter_mut().flatten().find(|e| e.region == region) {
            e.touched = e.touched.saturating_add(1);
            e.lru = clock;
            if index > e.last_index {
                e.ascending.increment();
                e.descending.decrement();
            } else if index < e.last_index {
                e.descending.increment();
                e.ascending.decrement();
            }
            e.last_index = index;
            if e.touched >= self.config.density_threshold {
                return Some(e.ascending.value() >= e.descending.value());
            }
            return None;
        }
        // Allocate (LRU replace) a region entry.
        let slot = if let Some(i) = self.rst.iter().position(Option::is_none) {
            i
        } else {
            self.rst
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("RST is non-empty")
        };
        self.rst[slot] = Some(RegionEntry {
            region,
            touched: 1,
            last_index: index,
            ascending: SaturatingCounter::with_bits(3),
            descending: SaturatingCounter::with_bits(3),
            lru: clock,
        });
        None
    }

    fn ip_slot(&mut self, pc: Pc) -> (usize, bool) {
        if let Some(i) = self.ip_table.iter().position(|e| e.map(|e| e.tag) == Some(pc)) {
            return (i, true);
        }
        if let Some(i) = self.ip_table.iter().position(Option::is_none) {
            return (i, false);
        }
        let victim = self
            .ip_table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("IP table is non-empty");
        self.stats.evictions += 1;
        (victim, false)
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &'static str {
        "GS"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Stream
    }

    fn train_and_predict(&mut self, access: &DemandAccess, degree: u32, out: &mut Vec<LineAddr>) {
        let line = access.line();
        let stream_direction = self.update_region(line);
        self.stats.lookups += 1;
        self.stats.trainings += 1;
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let (slot, hit) = self.ip_slot(access.pc);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.ip_table[slot] = Some(IpEntry {
                tag: access.pc,
                last_line: line,
                direction_up: true,
                confidence: SaturatingCounter::with_bits(2),
                lru: clock,
            });
        }
        let entry = self.ip_table[slot].as_mut().expect("slot was just filled or hit");
        entry.lru = clock;
        let delta = line.delta_from(entry.last_line);
        entry.last_line = line;

        match stream_direction {
            Some(up) => {
                // Region confirms a dense stream; align the PC with it.
                if entry.direction_up == up && delta != 0 {
                    entry.confidence.increment();
                } else {
                    entry.direction_up = up;
                    entry.confidence.reset();
                    entry.confidence.increment();
                }
            }
            None => {
                // Monotonic single-PC streaming also builds confidence slowly.
                if (delta > 0 && entry.direction_up) || (delta < 0 && !entry.direction_up) {
                    entry.confidence.increment();
                } else if delta != 0 {
                    entry.direction_up = delta > 0;
                    entry.confidence.reset();
                }
            }
        }

        if entry.confidence.value() >= 2 {
            let step: i64 = if entry.direction_up { 1 } else { -1 };
            for i in 1..=i64::from(degree) {
                out.push(line.offset(step * i));
            }
            self.stats.candidates_emitted += u64::from(degree);
        }
    }

    fn probe(&self, access: &DemandAccess) -> bool {
        let pc_confident =
            self.ip_table.iter().flatten().any(|e| e.tag == access.pc && e.confidence.value() >= 2);
        let (region, _) = Self::region_of(access.line());
        let region_dense = self
            .rst
            .iter()
            .flatten()
            .any(|e| e.region == region && e.touched >= self.config.density_threshold);
        pc_confident || region_dense
    }

    fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    fn storage_bits(&self) -> u64 {
        // IP entry: tag 16 b + last line 58 b + dir 1 b + conf 2 b + LRU 6 b.
        // RST entry: region tag 48 b + touched 6 b + last index 5 b + 2×3 b + LRU 3 b.
        (self.config.ip_entries as u64) * (16 + 58 + 1 + 2 + 6)
            + (self.config.rst_entries as u64) * (48 + 6 + 5 + 6 + 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    #[test]
    fn ascending_stream_prefetches_next_lines() {
        let mut pf = StreamPrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            pf.train_and_predict(&access(0x100, 0x40_0000 + i * 64), 3, &mut out);
        }
        let last = Addr::new(0x40_0000 + 7 * 64).line();
        assert_eq!(out, vec![last.offset(1), last.offset(2), last.offset(3)]);
    }

    #[test]
    fn descending_stream_prefetches_previous_lines() {
        let mut pf = StreamPrefetcher::default_config();
        let mut out = Vec::new();
        for i in (0..8u64).rev() {
            out.clear();
            pf.train_and_predict(&access(0x104, 0x40_0000 + i * 64), 2, &mut out);
        }
        let last = Addr::new(0x40_0000).line();
        assert_eq!(out, vec![last.offset(-1), last.offset(-2)]);
    }

    #[test]
    fn random_accesses_do_not_stream() {
        let mut pf = StreamPrefetcher::default_config();
        let mut out = Vec::new();
        let addrs = [0x1000u64, 0x80_0000, 0x3000, 0xff_0000, 0x5000, 0x9_0000];
        for &a in &addrs {
            out.clear();
            pf.train_and_predict(&access(0x108, a), 2, &mut out);
        }
        assert!(out.is_empty(), "non-streaming accesses should not trigger GS");
    }

    #[test]
    fn two_pcs_in_same_region_share_stream_detection() {
        let mut pf = StreamPrefetcher::default_config();
        let mut out = Vec::new();
        // PC A walks the region; PC B touches it afterwards and should be
        // recognised quickly thanks to the RST density information.
        for i in 0..6u64 {
            pf.train_and_predict(&access(0x200, 0x10_0000 + i * 64), 2, &mut out);
        }
        out.clear();
        pf.train_and_predict(&access(0x204, 0x10_0000 + 6 * 64), 2, &mut out);
        out.clear();
        pf.train_and_predict(&access(0x204, 0x10_0000 + 7 * 64), 2, &mut out);
        assert!(!out.is_empty(), "second PC should piggy-back on the detected stream");
    }

    #[test]
    fn stats_account_lookups_and_misses() {
        let mut pf = StreamPrefetcher::default_config();
        let mut out = Vec::new();
        for i in 0..5u64 {
            pf.train_and_predict(&access(0x300 + i, 0x1000 * i), 1, &mut out);
        }
        let s = pf.table_stats();
        assert_eq!(s.lookups, 5);
        assert_eq!(s.misses, 5);
        pf.reset_stats();
        assert_eq!(pf.table_stats().lookups, 0);
    }

    #[test]
    fn storage_positive() {
        let pf = StreamPrefetcher::default_config();
        assert!(pf.storage_bits() > 0);
        assert_eq!(pf.name(), "GS");
        assert_eq!(pf.kind(), PrefetcherKind::Stream);
    }
}
