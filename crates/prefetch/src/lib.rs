//! Hardware prefetcher implementations scheduled by the selection algorithms.
//!
//! The composite prefetchers evaluated in the paper are built from:
//!
//! * [`StreamPrefetcher`] — the GS (global stream) component of IPCP,
//! * [`StridePrefetcher`] — the CS (constant stride) component of IPCP,
//! * [`PmpPrefetcher`] — the PMP spatial bit-pattern prefetcher,
//! * [`BertiPrefetcher`] — the Berti local-delta prefetcher,
//! * [`CplxPrefetcher`] — the CPLX complex-stride component of IPCP,
//! * [`TemporalPrefetcher`] — a Triangel-style on-chip temporal (Markov) prefetcher.
//!
//! All of them implement the [`Prefetcher`] trait: they are *trained* with a
//! demand access plus a prefetch degree and respond with candidate cache
//! lines. Which demand accesses reach which prefetcher — and with what degree
//! — is exactly the decision the paper's selection algorithms make.
//!
//! # Example
//!
//! ```
//! use prefetch::{Prefetcher, StridePrefetcher};
//! use alecto_types::{DemandAccess, Pc, Addr};
//!
//! let mut pf = StridePrefetcher::default_config();
//! let mut out = Vec::new();
//! for i in 0..4u64 {
//!     out.clear();
//!     let access = DemandAccess::load(Pc::new(0x400), Addr::new(0x1_0000 + i * 256));
//!     pf.train_and_predict(&access, 2, &mut out);
//! }
//! assert!(!out.is_empty(), "a constant 256 B stride should be predicted");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berti;
pub mod composite;
pub mod cplx;
pub mod pmp;
pub mod stream;
pub mod stride;
pub mod temporal;
pub mod traits;

pub use berti::BertiPrefetcher;
pub use composite::{build_composite, CompositeKind};
pub use cplx::CplxPrefetcher;
pub use pmp::PmpPrefetcher;
pub use stream::StreamPrefetcher;
pub use stride::StridePrefetcher;
pub use temporal::{TemporalConfig, TemporalPrefetcher};
pub use traits::{Prefetcher, PrefetcherKind, TableStats};
