//! Statistics helpers used when aggregating per-benchmark results into the
//! geometric means the paper reports (every speedup figure is a geomean over
//! benchmarks, and single-core SPEC numbers are weighted over checkpoints).

/// Geometric mean of a slice of positive values.
///
/// Returns `None` for an empty slice or if any value is non-positive, mirroring
/// how the paper's geomeans are only defined over positive speedups.
///
/// ```
/// # use alecto_types::geomean;
/// assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
/// assert_eq!(geomean(&[]), None);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Weighted geometric mean; weights must be non-negative and not all zero.
///
/// Used to aggregate per-checkpoint results "with weighted averages" (§V-D).
#[must_use]
pub fn weighted_geomean(values: &[f64], weights: &[f64]) -> Option<f64> {
    if values.is_empty() || values.len() != weights.len() {
        return None;
    }
    if values.iter().any(|v| *v <= 0.0) || weights.iter().any(|w| *w < 0.0) {
        return None;
    }
    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return None;
    }
    let log_sum: f64 = values.iter().zip(weights).map(|(v, w)| w * v.ln()).sum();
    Some((log_sum / total_weight).exp())
}

/// Harmonic mean of positive values (used for multi-programmed throughput
/// sanity checks; the paper's multi-core figures report weighted speedups).
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

/// A running summary (count, mean, min, max) of an online stream of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub const fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples added.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub const fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if no samples were added.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest sample seen, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample seen, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -1.0]), None);
    }

    #[test]
    fn weighted_geomean_reduces_to_geomean_with_equal_weights() {
        let v = [1.1, 1.3, 0.9, 2.0];
        let w = [1.0, 1.0, 1.0, 1.0];
        let a = geomean(&v).unwrap();
        let b = weighted_geomean(&v, &w).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn weighted_geomean_validates_input() {
        assert_eq!(weighted_geomean(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(weighted_geomean(&[1.0], &[0.0]), None);
        assert_eq!(weighted_geomean(&[1.0], &[-1.0]), None);
        assert_eq!(weighted_geomean(&[], &[]), None);
    }

    #[test]
    fn harmonic_mean_basic() {
        assert!((harmonic_mean(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), None);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        for x in [3.0, 1.0, 2.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.mean().unwrap() - 2.0).abs() < 1e-12);
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }
}
