//! Demand-access and prefetch-request descriptors exchanged between the core,
//! the selection framework, the prefetchers and the cache hierarchy.

use crate::addr::{Addr, LineAddr, Pc};

/// Whether a demand access is a load or a store.
///
/// Prefetchers in this reproduction are trained on both (the paper trains on
/// L1D demand requests, i.e. loads and stores), but some consumers — e.g. the
/// timeliness bookkeeping — only care about loads because only loads stall the
/// ROB head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Load`].
    #[must_use]
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// A demand request as seen by the L1 data cache and by Alecto's step ①:
/// "the demand request, including the PC and memory address".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemandAccess {
    /// Program counter of the memory access instruction.
    pub pc: Pc,
    /// Byte address being accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

impl DemandAccess {
    /// Creates a demand access descriptor.
    ///
    /// ```
    /// # use alecto_types::{DemandAccess, Pc, Addr, AccessKind};
    /// let d = DemandAccess::new(Pc::new(0x400), Addr::new(0x1000), AccessKind::Load);
    /// assert!(d.kind.is_load());
    /// ```
    #[must_use]
    pub const fn new(pc: Pc, addr: Addr, kind: AccessKind) -> Self {
        Self { pc, addr, kind }
    }

    /// Convenience constructor for a load.
    #[must_use]
    pub const fn load(pc: Pc, addr: Addr) -> Self {
        Self::new(pc, addr, AccessKind::Load)
    }

    /// Convenience constructor for a store.
    #[must_use]
    pub const fn store(pc: Pc, addr: Addr) -> Self {
        Self::new(pc, addr, AccessKind::Store)
    }

    /// The cache line touched by this access.
    #[must_use]
    pub const fn line(&self) -> LineAddr {
        self.addr.line()
    }
}

/// Index of a prefetcher within the composite bundle (0-based, `P` prefetchers
/// total — P = 3 in the paper's evaluated configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefetcherId(pub usize);

impl PrefetcherId {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Which cache level a prefetch should fill into.
///
/// Alecto prefetches the first `c` lines into the cache where the prefetchers
/// reside (L1 in the evaluation) and the additional `m + 1` lines into the
/// next-level cache (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FillLevel {
    /// Fill into the L1 data cache.
    L1,
    /// Fill into the L2 cache only.
    L2,
}

/// A prefetch request emitted by one of the prefetchers in the composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchRequest {
    /// Cache line to prefetch.
    pub line: LineAddr,
    /// PC of the demand access that triggered training (used by the Sandbox
    /// Table to attribute usefulness back to the triggering instruction).
    pub trigger_pc: Pc,
    /// Which prefetcher issued this request.
    pub issuer: PrefetcherId,
    /// Level the request should fill into.
    pub fill_level: FillLevel,
}

impl PrefetchRequest {
    /// Creates a prefetch request targeting the L1 data cache.
    #[must_use]
    pub const fn new(line: LineAddr, trigger_pc: Pc, issuer: PrefetcherId) -> Self {
        Self { line, trigger_pc, issuer, fill_level: FillLevel::L1 }
    }

    /// Returns a copy of the request redirected to fill `level` instead.
    #[must_use]
    pub const fn with_fill_level(mut self, level: FillLevel) -> Self {
        self.fill_level = level;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_access_line() {
        let d = DemandAccess::load(Pc::new(1), Addr::new(0x87));
        assert_eq!(d.line(), LineAddr::new(0x2));
        assert!(d.kind.is_load());
        assert!(!DemandAccess::store(Pc::new(1), Addr::new(0)).kind.is_load());
    }

    #[test]
    fn prefetch_request_fill_level() {
        let r = PrefetchRequest::new(LineAddr::new(10), Pc::new(0x40), PrefetcherId(2));
        assert_eq!(r.fill_level, FillLevel::L1);
        let r2 = r.with_fill_level(FillLevel::L2);
        assert_eq!(r2.fill_level, FillLevel::L2);
        assert_eq!(r2.line, r.line);
        assert_eq!(r2.issuer.index(), 2);
    }
}
