//! Common types shared across the Alecto reproduction workspace.
//!
//! This crate deliberately contains only small, dependency-free building
//! blocks: strongly typed addresses, demand/prefetch request descriptors,
//! saturating counters, the folded-XOR PC hash used by the Sandbox Table, and
//! a handful of statistics helpers used when aggregating results.
//!
//! # Example
//!
//! ```
//! use alecto_types::{Addr, LineAddr, DemandAccess, AccessKind, Pc};
//!
//! let access = DemandAccess::new(Pc::new(0x30b00), Addr::new(0x7fff_0040), AccessKind::Load);
//! assert_eq!(access.line(), LineAddr::new(0x7fff_0040 >> 6));
//! assert_eq!(access.line().block_offset_of(Addr::new(0x7fff_0040)), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod counter;
pub mod hash;
pub mod request;
pub mod stats;
pub mod trace;

pub use addr::{
    Addr, LineAddr, PageAddr, Pc, CACHE_LINE_BYTES, LINES_PER_PAGE, LINE_OFFSET_BITS, PAGE_BYTES,
    PAGE_OFFSET_BITS,
};
pub use counter::{RatioCounter, SaturatingCounter};
pub use hash::{fnv1a_64, fold_pc, FoldedPcHasher, FNV1A_OFFSET};
pub use request::{AccessKind, DemandAccess, FillLevel, PrefetchRequest, PrefetcherId};
pub use stats::{geomean, harmonic_mean, weighted_geomean, Summary};
pub use trace::{BoxedRecordIter, MemoryRecord, RecordBatches, TraceSource, Workload};
