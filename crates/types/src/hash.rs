//! Folded-XOR PC hashing, as used by the Sandbox Table.
//!
//! §IV-C: "Alecto utilizes common hash functions found in Branch Prediction
//! Unit designs. This approach involves dividing the PC address into n
//! segments and applying an XOR operation across these segments to generate a
//! final, compacted hash value... By setting n to correspond with the
//! logarithm of the table's entry count, Alecto significantly decreases the
//! storage overhead."

use crate::addr::Pc;

/// Folds a PC into `bits` bits by XOR-ing successive `bits`-wide segments.
///
/// ```
/// # use alecto_types::{fold_pc, Pc};
/// let h = fold_pc(Pc::new(0x1234_5678_9abc_def0), 9);
/// assert!(h < (1 << 9));
/// // Folding is deterministic.
/// assert_eq!(h, fold_pc(Pc::new(0x1234_5678_9abc_def0), 9));
/// ```
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32.
#[must_use]
pub fn fold_pc(pc: Pc, bits: u32) -> u32 {
    assert!(bits > 0 && bits <= 32, "fold width must be 1..=32 bits");
    let mask: u64 = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut value = pc.raw();
    let mut folded: u64 = 0;
    while value != 0 {
        folded ^= value & mask;
        value >>= bits;
    }
    (folded & mask) as u32
}

/// A reusable folded-XOR hasher with a fixed output width, convenient when a
/// table stores many hashed PC tags of the same width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedPcHasher {
    bits: u32,
}

impl FoldedPcHasher {
    /// Creates a hasher producing `bits`-wide hashes.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 32, "fold width must be 1..=32 bits");
        Self { bits }
    }

    /// Output width in bits.
    #[must_use]
    pub const fn bits(&self) -> u32 {
        self.bits
    }

    /// Hashes a PC.
    #[must_use]
    pub fn hash(&self, pc: Pc) -> u32 {
        fold_pc(pc, self.bits)
    }
}

/// Offset basis of the FNV-1a64 hash ([`fnv1a_64`] starts from this).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a64 running state — the workspace's canonical
/// content hash. The same function checksums `.altr` trace bodies (`traceio`)
/// and derives [`crate::TraceSource`] fingerprints and sweep-server cell-cache
/// keys (`harness::cellcache`), so a trace's identity means the same thing
/// everywhere. Start from [`FNV1A_OFFSET`] and chain calls to hash
/// incrementally.
///
/// ```
/// # use alecto_types::{fnv1a_64, FNV1A_OFFSET};
/// let whole = fnv1a_64(FNV1A_OFFSET, b"foobar");
/// let chained = fnv1a_64(fnv1a_64(FNV1A_OFFSET, b"foo"), b"bar");
/// assert_eq!(whole, chained);
/// assert_eq!(whole, 0x8594_4171_f739_67e8); // reference FNV-1a64 vector
/// ```
#[must_use]
pub fn fnv1a_64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = (state ^ u64::from(b)).wrapping_mul(FNV1A_PRIME);
    }
    state
}

/// A simple multiplicative hash used for cache set indexing of line addresses.
/// Not part of the paper's proposal; used internally by table index functions
/// to avoid pathological aliasing in synthetic traces.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_stays_in_range() {
        for bits in 1..=20u32 {
            for raw in [0u64, 1, 0xdead_beef, u64::MAX, 0x0040_0a30_b00f_f123] {
                let h = fold_pc(Pc::new(raw), bits);
                assert!(u64::from(h) < (1u64 << bits), "hash {h} out of range for {bits} bits");
            }
        }
    }

    #[test]
    fn fold_zero_is_zero() {
        assert_eq!(fold_pc(Pc::new(0), 9), 0);
    }

    #[test]
    fn fold_differs_for_nearby_pcs_often() {
        // Not a strict requirement, but the folding of distinct low bits must
        // differ when the rest of the PC is identical.
        let a = fold_pc(Pc::new(0x30b00), 9);
        let b = fold_pc(Pc::new(0x30aca), 9);
        assert_ne!(a, b);
    }

    #[test]
    fn hasher_matches_free_function() {
        let h = FoldedPcHasher::new(9);
        assert_eq!(h.bits(), 9);
        assert_eq!(h.hash(Pc::new(0x1234_5678)), fold_pc(Pc::new(0x1234_5678), 9));
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn zero_width_panics() {
        let _ = fold_pc(Pc::new(1), 0);
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
