//! Strongly typed addresses: byte addresses, cache-line addresses, page
//! addresses and program counters.
//!
//! The paper's structures are indexed either by the *memory access address*
//! (Sandbox Table) or by the *memory access instruction address* (Allocation
//! Table, Sample Table). Using newtypes keeps the two index spaces from being
//! confused anywhere in the workspace.

use std::fmt;

/// Cache line size in bytes (Table I: 64 B lines at every level).
pub const CACHE_LINE_BYTES: u64 = 64;
/// Number of byte-offset bits within a cache line.
pub const LINE_OFFSET_BITS: u32 = CACHE_LINE_BYTES.trailing_zeros();
/// Page size in bytes (4 KiB, the region granularity used by the spatial prefetchers).
pub const PAGE_BYTES: u64 = 4096;
/// Number of byte-offset bits within a page.
pub const PAGE_OFFSET_BITS: u32 = PAGE_BYTES.trailing_zeros();
/// Number of cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / CACHE_LINE_BYTES;

/// A byte-granular virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a new byte address.
    ///
    /// ```
    /// # use alecto_types::Addr;
    /// let a = Addr::new(0x1040);
    /// assert_eq!(a.raw(), 0x1040);
    /// ```
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line this byte address falls into.
    #[must_use]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_OFFSET_BITS)
    }

    /// The 4 KiB page this byte address falls into.
    #[must_use]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_OFFSET_BITS)
    }

    /// Byte offset within the cache line.
    #[must_use]
    pub const fn line_offset(self) -> u64 {
        self.0 & (CACHE_LINE_BYTES - 1)
    }

    /// Returns the address advanced by `bytes` (wrapping).
    #[must_use]
    pub const fn offset(self, bytes: i64) -> Self {
        Self(self.0.wrapping_add(bytes as u64))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// A cache-line-granular address (byte address divided by the 64 B line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a *line number* (not a byte address).
    #[must_use]
    pub const fn new(line_number: u64) -> Self {
        Self(line_number)
    }

    /// The raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts back to the byte address of the first byte in the line.
    #[must_use]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_OFFSET_BITS)
    }

    /// The page containing this line.
    #[must_use]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_OFFSET_BITS - LINE_OFFSET_BITS))
    }

    /// Index of this line within its page (0..=63 for 4 KiB pages of 64 B lines).
    #[must_use]
    pub const fn index_in_page(self) -> u64 {
        self.0 & (LINES_PER_PAGE - 1)
    }

    /// Signed distance in cache lines from `other` to `self`.
    #[must_use]
    pub const fn delta_from(self, other: LineAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }

    /// Returns the line advanced by `delta` lines (wrapping, saturating at zero
    /// for negative overflow is not needed for 64-bit address spaces).
    #[must_use]
    pub const fn offset(self, delta: i64) -> Self {
        Self(self.0.wrapping_add(delta as u64))
    }

    /// Index of `addr` within this line, measured in lines-within-page terms:
    /// returns 1 if `addr` sits exactly one line above this line's base, etc.
    /// Mostly useful in doctests; the simulator works at line granularity.
    #[must_use]
    pub const fn block_offset_of(self, addr: Addr) -> u64 {
        addr.line().0.wrapping_sub(self.0).wrapping_add(1)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A 4 KiB-page-granular address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page number.
    #[must_use]
    pub const fn new(page_number: u64) -> Self {
        Self(page_number)
    }

    /// The raw page number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first cache line in this page.
    #[must_use]
    pub const fn first_line(self) -> LineAddr {
        LineAddr(self.0 << (PAGE_OFFSET_BITS - LINE_OFFSET_BITS))
    }

    /// The `i`-th cache line in this page (`i` is taken modulo lines-per-page).
    #[must_use]
    pub const fn line(self, i: u64) -> LineAddr {
        LineAddr((self.0 << (PAGE_OFFSET_BITS - LINE_OFFSET_BITS)) + (i & (LINES_PER_PAGE - 1)))
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

/// The address of a memory-access *instruction* (program counter).
///
/// Alecto's Allocation Table and Sample Table are indexed by PC because
/// "demand requests originating from a single memory access instruction often
/// display consistent patterns" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit PC.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_line_and_page() {
        let a = Addr::new(0x1_2345);
        assert_eq!(a.line().raw(), 0x1_2345 >> 6);
        assert_eq!(a.page().raw(), 0x1_2345 >> 12);
        assert_eq!(a.line_offset(), 0x05);
    }

    #[test]
    fn line_round_trip() {
        let l = LineAddr::new(42);
        assert_eq!(l.base_addr().line(), l);
        assert_eq!(l.base_addr().raw(), 42 * 64);
    }

    #[test]
    fn line_delta_is_signed() {
        let a = LineAddr::new(100);
        let b = LineAddr::new(104);
        assert_eq!(b.delta_from(a), 4);
        assert_eq!(a.delta_from(b), -4);
        assert_eq!(a.offset(4), b);
        assert_eq!(b.offset(-4), a);
    }

    #[test]
    fn page_lines() {
        let p = PageAddr::new(7);
        assert_eq!(p.first_line().page(), p);
        assert_eq!(p.line(0), p.first_line());
        assert_eq!(p.line(63).index_in_page(), 63);
        assert_eq!(p.line(63).page(), p);
        // wraps modulo lines-per-page
        assert_eq!(p.line(64), p.line(0));
    }

    #[test]
    fn index_in_page_bounds() {
        for i in 0..LINES_PER_PAGE {
            let line = PageAddr::new(3).line(i);
            assert_eq!(line.index_in_page(), i);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(1).to_string(), "line:0x1");
        assert_eq!(PageAddr::new(2).to_string(), "page:0x2");
        assert_eq!(Pc::new(3).to_string(), "pc:0x3");
    }
}
