//! Trace records: the interface between the workload generators (`traces`
//! crate) and the core timing model (`cpu` crate).
//!
//! The simulator is trace driven: a workload is a sequence of memory access
//! records, each annotated with the number of non-memory instructions the
//! core executed since the previous memory access. This is the same
//! information a gem5 simpoint checkpoint provides to an execution-driven
//! run, collapsed to what the memory hierarchy and prefetchers can observe.

use crate::addr::{Addr, Pc};
use crate::request::{AccessKind, DemandAccess};

/// One memory access in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRecord {
    /// PC of the memory access instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of non-memory instructions executed since the previous record.
    pub gap_instructions: u32,
    /// `true` when this access is data-dependent on the previous access made
    /// by the *same PC* (pointer chasing): it cannot issue until that access
    /// completes. Independent accesses overlap freely inside the ROB window.
    pub dependent: bool,
}

impl MemoryRecord {
    /// Creates an (independent) load record.
    #[must_use]
    pub const fn load(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Load, gap_instructions, dependent: false }
    }

    /// Creates a load record that is serially dependent on the previous access
    /// of the same PC (a pointer-chase step).
    #[must_use]
    pub const fn dependent_load(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Load, gap_instructions, dependent: true }
    }

    /// Creates a store record.
    #[must_use]
    pub const fn store(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Store, gap_instructions, dependent: false }
    }

    /// The demand access this record turns into when it reaches the L1D.
    #[must_use]
    pub const fn demand(&self) -> DemandAccess {
        DemandAccess::new(self.pc, self.addr, self.kind)
    }

    /// Total instructions this record accounts for (the memory access itself
    /// plus the preceding non-memory instructions).
    #[must_use]
    pub const fn instructions(&self) -> u64 {
        self.gap_instructions as u64 + 1
    }
}

/// A named workload: a benchmark-like memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Benchmark name (e.g. `"mcf"` or `"459.GemsFDTD"`).
    pub name: String,
    /// The memory access trace.
    pub records: Vec<MemoryRecord>,
    /// Whether the paper counts this benchmark as memory intensive (drives the
    /// separate geomean of Figs. 8/9 and the Fig. 19/20 benchmark set).
    pub memory_intensive: bool,
}

impl Workload {
    /// Creates a workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        records: Vec<MemoryRecord>,
        memory_intensive: bool,
    ) -> Self {
        Self { name: name.into(), records, memory_intensive }
    }

    /// Total instruction count represented by the trace.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(MemoryRecord::instructions).sum()
    }

    /// Number of memory accesses in the trace.
    #[must_use]
    pub fn memory_accesses(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_helpers() {
        let r = MemoryRecord::load(Pc::new(0x40), Addr::new(0x1000), 9);
        assert_eq!(r.instructions(), 10);
        assert!(r.demand().kind.is_load());
        let s = MemoryRecord::store(Pc::new(0x44), Addr::new(0x2000), 0);
        assert_eq!(s.instructions(), 1);
        assert!(!s.demand().kind.is_load());
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new(
            "toy",
            vec![
                MemoryRecord::load(Pc::new(1), Addr::new(64), 4),
                MemoryRecord::store(Pc::new(2), Addr::new(128), 5),
            ],
            true,
        );
        assert_eq!(w.instructions(), 11);
        assert_eq!(w.memory_accesses(), 2);
        assert!(w.memory_intensive);
        assert_eq!(w.name, "toy");
    }
}
