//! Trace records: the interface between the workload generators (`traces`
//! crate) and the core timing model (`cpu` crate).
//!
//! The simulator is trace driven: a workload is a sequence of memory access
//! records, each annotated with the number of non-memory instructions the
//! core executed since the previous memory access. This is the same
//! information a gem5 simpoint checkpoint provides to an execution-driven
//! run, collapsed to what the memory hierarchy and prefetchers can observe.

use std::fmt;
use std::sync::Arc;

use crate::addr::{Addr, Pc};
use crate::hash::{fnv1a_64, FNV1A_OFFSET};
use crate::request::{AccessKind, DemandAccess};

/// One memory access in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRecord {
    /// PC of the memory access instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of non-memory instructions executed since the previous record.
    pub gap_instructions: u32,
    /// `true` when this access is data-dependent on the previous access made
    /// by the *same PC* (pointer chasing): it cannot issue until that access
    /// completes. Independent accesses overlap freely inside the ROB window.
    pub dependent: bool,
}

impl MemoryRecord {
    /// Creates an (independent) load record.
    #[must_use]
    pub const fn load(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Load, gap_instructions, dependent: false }
    }

    /// Creates a load record that is serially dependent on the previous access
    /// of the same PC (a pointer-chase step).
    #[must_use]
    pub const fn dependent_load(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Load, gap_instructions, dependent: true }
    }

    /// Creates a store record.
    #[must_use]
    pub const fn store(pc: Pc, addr: Addr, gap_instructions: u32) -> Self {
        Self { pc, addr, kind: AccessKind::Store, gap_instructions, dependent: false }
    }

    /// The demand access this record turns into when it reaches the L1D.
    #[must_use]
    pub const fn demand(&self) -> DemandAccess {
        DemandAccess::new(self.pc, self.addr, self.kind)
    }

    /// Total instructions this record accounts for (the memory access itself
    /// plus the preceding non-memory instructions).
    #[must_use]
    pub const fn instructions(&self) -> u64 {
        self.gap_instructions as u64 + 1
    }
}

/// A named workload: a benchmark-like memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Benchmark name (e.g. `"mcf"` or `"459.GemsFDTD"`).
    pub name: String,
    /// The memory access trace.
    pub records: Vec<MemoryRecord>,
    /// Whether the paper counts this benchmark as memory intensive (drives the
    /// separate geomean of Figs. 8/9 and the Fig. 19/20 benchmark set).
    pub memory_intensive: bool,
}

impl Workload {
    /// Creates a workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        records: Vec<MemoryRecord>,
        memory_intensive: bool,
    ) -> Self {
        Self { name: name.into(), records, memory_intensive }
    }

    /// Total instruction count represented by the trace.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(MemoryRecord::instructions).sum()
    }

    /// Number of memory accesses in the trace.
    #[must_use]
    pub fn memory_accesses(&self) -> usize {
        self.records.len()
    }
}

/// A boxed, sendable record iterator — what a [`TraceSource`] factory yields.
pub type BoxedRecordIter = Box<dyn Iterator<Item = MemoryRecord> + Send>;

/// A lazily generated, restartable workload: the streaming counterpart of
/// [`Workload`].
///
/// Where a `Workload` eagerly materialises its whole trace as a
/// `Vec<MemoryRecord>` (O(accesses) memory), a `TraceSource` holds only a
/// *factory* that can mint fresh record iterators on demand, so a
/// 10-million-access run costs the same memory as a 100-access one. The
/// factory must be a pure function of the source's construction parameters:
/// every call to [`TraceSource::records`] yields the **same** record
/// sequence, which is what lets the parallel experiment engine hand one
/// shared source to many simulation cells (and several cores of one cell)
/// without coordination.
///
/// Cloning is cheap (the factory is behind an [`Arc`]).
#[derive(Clone)]
pub struct TraceSource {
    name: String,
    memory_intensive: bool,
    accesses: usize,
    fingerprint: u64,
    factory: Arc<dyn Fn() -> BoxedRecordIter + Send + Sync>,
}

impl TraceSource {
    /// Creates a source named `name` producing `accesses` records per replay.
    ///
    /// `factory` may yield an *unbounded* iterator; [`TraceSource::records`]
    /// truncates it to `accesses` records.
    ///
    /// The source's [`TraceSource::fingerprint`] starts as a hash of the name,
    /// intensity flag and access budget. A constructor whose record stream
    /// depends on anything beyond those — an explicit generation seed, a
    /// backing file — must fold that extra identity in with
    /// [`TraceSource::with_content_seed`] / [`TraceSource::with_content_tag`],
    /// or distinct streams could share a fingerprint.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        memory_intensive: bool,
        accesses: usize,
        factory: impl Fn() -> BoxedRecordIter + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        let mut fingerprint = fnv1a_64(FNV1A_OFFSET, b"src|");
        fingerprint = fnv1a_64(fingerprint, name.as_bytes());
        fingerprint = fnv1a_64(fingerprint, &[u8::from(memory_intensive)]);
        fingerprint = fnv1a_64(fingerprint, &(accesses as u64).to_le_bytes());
        Self { name, memory_intensive, accesses, fingerprint, factory: Arc::new(factory) }
    }

    /// Wraps an already-materialised workload (the records are shared, not
    /// copied, between replays). The legacy bridge for callers that still
    /// build `Workload`s eagerly. The fingerprint covers the actual record
    /// bytes, so two materialised workloads share a fingerprint exactly when
    /// their traces are identical.
    #[must_use]
    pub fn from_workload(workload: Workload) -> Self {
        let Workload { name, records, memory_intensive } = workload;
        let accesses = records.len();
        let mut content = fnv1a_64(FNV1A_OFFSET, b"records|");
        for r in &records {
            content = fnv1a_64(content, &r.pc.raw().to_le_bytes());
            content = fnv1a_64(content, &r.addr.raw().to_le_bytes());
            content = fnv1a_64(content, &r.gap_instructions.to_le_bytes());
            content = fnv1a_64(content, &[u8::from(r.kind.is_load()), u8::from(r.dependent)]);
        }
        let records = Arc::new(records);
        Self::new(name, memory_intensive, accesses, move || {
            let records = Arc::clone(&records);
            Box::new((0..records.len()).map(move |i| records[i]))
        })
        .with_content_seed(content)
    }

    /// Benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the paper counts the benchmark as memory intensive.
    #[must_use]
    pub const fn memory_intensive(&self) -> bool {
        self.memory_intensive
    }

    /// Number of memory accesses one replay produces.
    #[must_use]
    pub const fn memory_accesses(&self) -> usize {
        self.accesses
    }

    /// Starts a fresh replay of the trace. Every call yields the identical
    /// record sequence.
    #[must_use]
    pub fn records(&self) -> BoxedRecordIter {
        Box::new((self.factory)().take(self.accesses))
    }

    /// Starts a fresh replay yielding the records in batches of at most
    /// `batch` records (minimum 1) — the unit the batched drive pipeline
    /// moves between producer threads and the simulation loop.
    ///
    /// Batching changes how many records move per call, never which records
    /// or in what order: concatenating the yielded batches reproduces
    /// [`TraceSource::records`] exactly, for any batch size. The batch size
    /// is an execution knob, not identity — it is deliberately **not**
    /// folded into the fingerprint.
    #[must_use]
    pub fn record_batches(&self, batch: usize) -> RecordBatches {
        RecordBatches { inner: self.records(), batch: batch.max(1) }
    }

    /// Materialises the trace into a [`Workload`] (O(accesses) memory — the
    /// legacy representation, still used by record-introspecting tests and
    /// figures).
    #[must_use]
    pub fn collect(&self) -> Workload {
        Workload::new(self.name.clone(), self.records().collect(), self.memory_intensive)
    }

    /// The source's content fingerprint: an FNV-1a64 digest of everything
    /// that determines the replayed record stream *and* how it is labelled in
    /// reports — the construction name, intensity flag, access budget, any
    /// folded-in seed or tag, and every derivation
    /// ([`TraceSource::with_name`], [`TraceSource::with_addr_offset`])
    /// applied since.
    ///
    /// Two sources with equal fingerprints replay byte-identical streams
    /// under identical labels (provided constructors uphold the folding
    /// contract documented on [`TraceSource::new`]), which is what lets the
    /// sweep server's cell cache treat the fingerprint as the trace's
    /// identity in a content-addressed cache key.
    #[must_use]
    pub const fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Folds an explicit generation seed into the fingerprint. Constructors
    /// whose stream depends on a seed beyond the benchmark name (e.g. per-core
    /// job seeds) must call this, or two differently seeded streams would be
    /// indistinguishable to the cell cache.
    #[must_use]
    pub fn with_content_seed(mut self, seed: u64) -> Self {
        self.fingerprint = fnv1a_64(self.fingerprint, b"|seed:");
        self.fingerprint = fnv1a_64(self.fingerprint, &seed.to_le_bytes());
        self
    }

    /// Folds an arbitrary identity tag into the fingerprint — e.g. the
    /// `.altr` body checksum of a file-backed source, which ties the
    /// fingerprint to the file's *content* rather than its path.
    #[must_use]
    pub fn with_content_tag(mut self, tag: &str) -> Self {
        self.fingerprint = fnv1a_64(self.fingerprint, b"|tag:");
        self.fingerprint = fnv1a_64(self.fingerprint, tag.as_bytes());
        self
    }

    /// Renames the source (e.g. to make sweep rows unique in a merged grid).
    /// The new label is folded into the fingerprint: reports key cells by
    /// benchmark name, so differently named replays of the same stream are
    /// different cells.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self.fingerprint = fnv1a_64(self.fingerprint, b"|name:");
        self.fingerprint = fnv1a_64(self.fingerprint, self.name.as_bytes());
        self
    }

    /// Derives a source whose every address is shifted by `offset` bytes —
    /// how multi-core sweeps give each core its own address-space slice
    /// without materialising per-core record vectors.
    #[must_use]
    pub fn with_addr_offset(mut self, offset: u64) -> Self {
        let inner = self.factory;
        self.fingerprint = fnv1a_64(self.fingerprint, b"|off:");
        self.fingerprint = fnv1a_64(self.fingerprint, &offset.to_le_bytes());
        Self {
            factory: Arc::new(move || {
                Box::new(inner().map(move |r| MemoryRecord {
                    addr: Addr::new(r.addr.raw().wrapping_add(offset)),
                    ..r
                }))
            }),
            ..self
        }
    }
}

/// Iterator of record batches minted by [`TraceSource::record_batches`].
/// Every batch but the last holds exactly the requested batch size; the last
/// holds the remainder. `Send`, like the per-record iterator, so a batch
/// stream can be driven from a background producer thread.
pub struct RecordBatches {
    inner: BoxedRecordIter,
    batch: usize,
}

impl Iterator for RecordBatches {
    type Item = Vec<MemoryRecord>;

    fn next(&mut self) -> Option<Vec<MemoryRecord>> {
        let mut out = Vec::with_capacity(self.batch);
        for record in self.inner.by_ref() {
            out.push(record);
            if out.len() == self.batch {
                break;
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

impl fmt::Debug for RecordBatches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordBatches").field("batch", &self.batch).finish_non_exhaustive()
    }
}

impl fmt::Debug for TraceSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSource")
            .field("name", &self.name)
            .field("memory_intensive", &self.memory_intensive)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_helpers() {
        let r = MemoryRecord::load(Pc::new(0x40), Addr::new(0x1000), 9);
        assert_eq!(r.instructions(), 10);
        assert!(r.demand().kind.is_load());
        let s = MemoryRecord::store(Pc::new(0x44), Addr::new(0x2000), 0);
        assert_eq!(s.instructions(), 1);
        assert!(!s.demand().kind.is_load());
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new(
            "toy",
            vec![
                MemoryRecord::load(Pc::new(1), Addr::new(64), 4),
                MemoryRecord::store(Pc::new(2), Addr::new(128), 5),
            ],
            true,
        );
        assert_eq!(w.instructions(), 11);
        assert_eq!(w.memory_accesses(), 2);
        assert!(w.memory_intensive);
        assert_eq!(w.name, "toy");
    }

    fn counting_source(accesses: usize) -> TraceSource {
        TraceSource::new("count", true, accesses, || {
            Box::new((0u64..).map(|i| MemoryRecord::load(Pc::new(0x10), Addr::new(i * 64), 3)))
        })
    }

    #[test]
    fn source_replays_are_identical_and_bounded() {
        let s = counting_source(5);
        assert_eq!(s.name(), "count");
        assert!(s.memory_intensive());
        assert_eq!(s.memory_accesses(), 5);
        let a: Vec<MemoryRecord> = s.records().collect();
        let b: Vec<MemoryRecord> = s.records().collect();
        assert_eq!(a.len(), 5, "unbounded factory must be truncated");
        assert_eq!(a, b, "replays must be identical");
        assert_eq!(s.collect().records, a);
    }

    #[test]
    fn source_round_trips_through_workload() {
        let w = counting_source(4).collect();
        let s = TraceSource::from_workload(w.clone());
        assert_eq!(s.collect(), w);
        assert_eq!(s.memory_accesses(), 4);
    }

    #[test]
    fn offset_and_rename_derive_new_sources() {
        let s = counting_source(3).with_name("shifted").with_addr_offset(1 << 20);
        assert_eq!(s.name(), "shifted");
        let base = counting_source(3);
        for (shifted, plain) in s.records().zip(base.records()) {
            assert_eq!(shifted.addr.raw(), plain.addr.raw() + (1 << 20));
            assert_eq!(shifted.pc, plain.pc);
        }
    }

    #[test]
    fn sources_are_send_and_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceSource>();
        const fn assert_send<T: Send>() {}
        assert_send::<RecordBatches>();
    }

    #[test]
    fn batches_concatenate_to_the_per_record_stream() {
        let s = counting_source(10);
        let flat: Vec<MemoryRecord> = s.records().collect();
        for batch in [1usize, 3, 7, 10, 4096] {
            let batches: Vec<Vec<MemoryRecord>> = s.record_batches(batch).collect();
            assert!(
                batches.iter().rev().skip(1).all(|b| b.len() == batch),
                "every batch but the last must be full at size {batch}"
            );
            let joined: Vec<MemoryRecord> = batches.into_iter().flatten().collect();
            assert_eq!(joined, flat, "batch size {batch} must not change the stream");
        }
        // A zero batch size is clamped to one rather than looping forever.
        assert_eq!(s.record_batches(0).next().map(|b| b.len()), Some(1));
        // Empty sources yield no batches at all.
        assert!(counting_source(0).record_batches(8).next().is_none());
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_identical_constructions() {
        let a = counting_source(5);
        let b = counting_source(5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.clone().fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_diverges_on_every_identity_component() {
        let base = counting_source(5);
        assert_ne!(base.fingerprint(), counting_source(6).fingerprint(), "access budget");
        assert_ne!(base.fingerprint(), base.clone().with_name("other").fingerprint(), "rename");
        assert_ne!(
            base.fingerprint(),
            base.clone().with_addr_offset(64).fingerprint(),
            "address offset"
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_content_seed(7).fingerprint(),
            "content seed"
        );
        assert_ne!(
            base.clone().with_content_seed(7).fingerprint(),
            base.clone().with_content_seed(8).fingerprint(),
            "different seeds"
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_content_tag("altr:0xabc").fingerprint(),
            "content tag"
        );
    }

    #[test]
    fn fingerprint_folding_is_order_sensitive() {
        let a = counting_source(3).with_name("x").with_addr_offset(64);
        let b = counting_source(3).with_addr_offset(64).with_name("x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn workload_fingerprint_tracks_record_content() {
        let mk = |gap| {
            Workload::new("w", vec![MemoryRecord::load(Pc::new(1), Addr::new(64), gap)], false)
        };
        let a = TraceSource::from_workload(mk(4));
        let b = TraceSource::from_workload(mk(4));
        let c = TraceSource::from_workload(mk(5));
        assert_eq!(a.fingerprint(), b.fingerprint(), "identical traces share identity");
        assert_ne!(a.fingerprint(), c.fingerprint(), "record content must matter");
    }
}
