//! Small hardware-style counters: saturating counters and issued/confirmed
//! ratio counters.
//!
//! These mirror the fields of the paper's Sample Table ("IssuedByP1",
//! "ConfirmedP1", "Demand Counter", "Dead Counter"), all of which are narrow
//! saturating counters in the hardware proposal (Table III: 7–8 bits each).

/// An unsigned saturating counter with a configurable maximum, mirroring the
/// narrow SRAM counters used throughout the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates a counter saturating at `max` (inclusive), starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`; a zero-width counter is meaningless.
    #[must_use]
    pub fn new(max: u32) -> Self {
        assert!(max > 0, "saturating counter needs a non-zero maximum");
        Self { value: 0, max }
    }

    /// Creates a counter whose maximum is `2^bits - 1`.
    #[must_use]
    pub fn with_bits(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 31, "counter width must be 1..=31 bits");
        Self::new((1 << bits) - 1)
    }

    /// Current value.
    #[must_use]
    pub const fn value(&self) -> u32 {
        self.value
    }

    /// The saturation limit.
    #[must_use]
    pub const fn max(&self) -> u32 {
        self.max
    }

    /// Increments, saturating at the maximum. Returns the new value.
    pub fn increment(&mut self) -> u32 {
        self.value = (self.value + 1).min(self.max);
        self.value
    }

    /// Decrements, saturating at zero. Returns the new value.
    pub fn decrement(&mut self) -> u32 {
        self.value = self.value.saturating_sub(1);
        self.value
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Whether the counter has reached its maximum.
    #[must_use]
    pub const fn is_saturated(&self) -> bool {
        self.value == self.max
    }

    /// Whether the counter has reached `threshold`.
    #[must_use]
    pub const fn reached(&self, threshold: u32) -> bool {
        self.value >= threshold
    }
}

/// Tracks an issued/confirmed pair and yields an accuracy ratio, as used for
/// per-PC, per-prefetcher prefetching accuracy in the Sample Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RatioCounter {
    issued: u32,
    confirmed: u32,
}

impl RatioCounter {
    /// Creates a zeroed ratio counter.
    #[must_use]
    pub const fn new() -> Self {
        Self { issued: 0, confirmed: 0 }
    }

    /// Number of issued events recorded.
    #[must_use]
    pub const fn issued(&self) -> u32 {
        self.issued
    }

    /// Number of confirmed events recorded.
    #[must_use]
    pub const fn confirmed(&self) -> u32 {
        self.confirmed
    }

    /// Records `n` issued events (saturating at the 8-bit hardware width times
    /// a generous software margin; saturation only matters for the ratio).
    pub fn record_issued(&mut self, n: u32) {
        self.issued = self.issued.saturating_add(n);
    }

    /// Records one confirmed event. Confirmations never exceed issues.
    pub fn record_confirmed(&mut self) {
        if self.confirmed < self.issued {
            self.confirmed += 1;
        }
    }

    /// Accuracy = confirmed / issued. Returns `None` when nothing was issued,
    /// which the Allocation Table treats as "insufficient data" rather than
    /// zero accuracy.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        if self.issued == 0 {
            None
        } else {
            Some(f64::from(self.confirmed) / f64::from(self.issued))
        }
    }

    /// Clears both counters (done at every epoch boundary).
    pub fn reset(&mut self) {
        self.issued = 0;
        self.confirmed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_counter_saturates_up_and_down() {
        let mut c = SaturatingCounter::new(3);
        assert_eq!(c.value(), 0);
        assert_eq!(c.decrement(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        assert!(c.reached(3));
        assert!(!c.reached(4));
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn with_bits_width() {
        let c = SaturatingCounter::with_bits(8);
        assert_eq!(c.max(), 255);
        let c = SaturatingCounter::with_bits(7);
        assert_eq!(c.max(), 127);
    }

    #[test]
    #[should_panic(expected = "non-zero maximum")]
    fn zero_max_panics() {
        let _ = SaturatingCounter::new(0);
    }

    #[test]
    fn ratio_counter_accuracy() {
        let mut r = RatioCounter::new();
        assert_eq!(r.accuracy(), None);
        r.record_issued(4);
        assert_eq!(r.accuracy(), Some(0.0));
        r.record_confirmed();
        r.record_confirmed();
        assert_eq!(r.accuracy(), Some(0.5));
        // confirmations are clamped to issues
        for _ in 0..10 {
            r.record_confirmed();
        }
        assert_eq!(r.accuracy(), Some(1.0));
        r.reset();
        assert_eq!(r.issued(), 0);
        assert_eq!(r.confirmed(), 0);
    }
}
