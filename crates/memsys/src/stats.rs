//! Per-cache statistics and the prefetch-quality breakdown of Fig. 10.

/// Simulated core clock cycle.
pub type Cycle = u64;

/// Hit/miss/fill statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Demand accesses that merged with an in-flight miss (MSHR hit).
    pub demand_mshr_merges: u64,
    /// Prefetch lookups that already hit (dropped as redundant).
    pub prefetch_hits: u64,
    /// Prefetch fills performed.
    pub prefetch_fills: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Prefetched lines evicted without ever being demanded (cache pollution).
    pub unused_prefetch_evictions: u64,
    /// Demand hits on lines that were brought in by a prefetch.
    pub useful_prefetch_hits: u64,
    /// Cycles a request had to wait because every MSHR was busy.
    pub mshr_stall_cycles: u64,
}

impl CacheStats {
    /// Total demand accesses observed.
    #[must_use]
    pub const fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses + self.demand_mshr_merges
    }

    /// Demand miss ratio in `[0, 1]`; `0` when no accesses were observed.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 / total as f64
        }
    }
}

/// The four-way breakdown of Fig. 10: covered misses with timely prefetches,
/// covered misses with untimely prefetches, uncovered misses, and
/// overpredicted (useless) prefetches. All counts are normalised against the
/// no-prefetching miss count by the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchQuality {
    /// Would-be misses eliminated by a prefetch that completed in time.
    pub covered_timely: u64,
    /// Would-be misses that found their line still in flight (partial hit).
    pub covered_untimely: u64,
    /// Demand misses not covered by any prefetch.
    pub uncovered: u64,
    /// Prefetched lines that were evicted (or invalidated) without use.
    pub overpredicted: u64,
}

impl PrefetchQuality {
    /// Prefetch accuracy: useful prefetches / issued prefetches, where useful
    /// = covered (timely or untimely) and issued = useful + overpredicted.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let useful = self.covered_timely + self.covered_untimely;
        let issued = useful + self.overpredicted;
        if issued == 0 {
            0.0
        } else {
            useful as f64 / issued as f64
        }
    }

    /// Prefetch coverage: covered / (covered + uncovered).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let covered = self.covered_timely + self.covered_untimely;
        let base = covered + self.uncovered;
        if base == 0 {
            0.0
        } else {
            covered as f64 / base as f64
        }
    }

    /// Timeliness: fraction of covered misses whose prefetch completed in time.
    #[must_use]
    pub fn timeliness(&self) -> f64 {
        let covered = self.covered_timely + self.covered_untimely;
        if covered == 0 {
            0.0
        } else {
            self.covered_timely as f64 / covered as f64
        }
    }

    /// Merges another quality record into this one (used when aggregating
    /// across cores or benchmarks).
    pub fn merge(&mut self, other: &PrefetchQuality) {
        self.covered_timely += other.covered_timely;
        self.covered_untimely += other.covered_untimely;
        self.uncovered += other.uncovered;
        self.overpredicted += other.overpredicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.demand_hits = 75;
        s.demand_misses = 25;
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.demand_accesses(), 100);
    }

    #[test]
    fn quality_metrics() {
        let q = PrefetchQuality {
            covered_timely: 60,
            covered_untimely: 20,
            uncovered: 20,
            overpredicted: 20,
        };
        assert!((q.accuracy() - 0.8).abs() < 1e-12);
        assert!((q.coverage() - 0.8).abs() < 1e-12);
        assert!((q.timeliness() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quality_metrics_empty() {
        let q = PrefetchQuality::default();
        assert_eq!(q.accuracy(), 0.0);
        assert_eq!(q.coverage(), 0.0);
        assert_eq!(q.timeliness(), 0.0);
    }

    #[test]
    fn quality_merge() {
        let mut a = PrefetchQuality {
            covered_timely: 1,
            covered_untimely: 2,
            uncovered: 3,
            overpredicted: 4,
        };
        let b = PrefetchQuality {
            covered_timely: 10,
            covered_untimely: 20,
            uncovered: 30,
            overpredicted: 40,
        };
        a.merge(&b);
        assert_eq!(a.covered_timely, 11);
        assert_eq!(a.covered_untimely, 22);
        assert_eq!(a.uncovered, 33);
        assert_eq!(a.overpredicted, 44);
    }
}
