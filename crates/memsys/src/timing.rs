//! Cycle-level timing knobs and bookkeeping shared by the whole hierarchy:
//! the DRAM admission (bandwidth) queue, and the per-core timing statistics
//! that turn the hit/miss counters into cycles, IPC and average memory-access
//! latency.
//!
//! The pieces here are *pure bookkeeping over the deterministic access
//! stream*: they never reorder requests or consult any global state, so the
//! serial-vs-parallel byte-identical determinism contract of the experiment
//! engine is preserved — timing makes runs slower or faster in simulated
//! cycles, never different.
//!
//! [`TimingParams`] lives inside the system configuration, so every knob
//! here reaches the harness cell cache's content-addressed key through the
//! config's `Debug` rendering: changing a drain rate or a latency invalidates
//! exactly the cached cells it would have changed (see `docs/ARCHITECTURE.md`,
//! "The determinism contract").

use crate::stats::Cycle;

/// System-level timing parameters beyond the per-level latencies carried by
/// [`crate::CacheParams`] (hit latency + miss escalation penalty per level).
///
/// The DRAM admission queue models the memory controller's front end: at most
/// `dram_drain_requests` line fills enter the DRAM banks per
/// `dram_drain_period` cycles. Requests beyond that rate queue — demand
/// traffic included — which is what makes bandwidth-bound configurations
/// visibly bandwidth-bound instead of hiding everything behind bank timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Requests admitted to DRAM per drain period.
    pub dram_drain_requests: u32,
    /// Length of the drain period in core cycles.
    pub dram_drain_period: u32,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::balanced()
    }
}

impl TimingParams {
    /// The default controller: two line fills admitted per cycle — generous
    /// enough that the queue only binds under heavy multi-core pressure.
    #[must_use]
    pub const fn balanced() -> Self {
        Self { dram_drain_requests: 2, dram_drain_period: 1 }
    }

    /// A latency-sensitive configuration: a wide front end (four admissions
    /// per cycle) that essentially never queues, so load-to-use latency is
    /// dominated by the array/bank latencies.
    #[must_use]
    pub const fn latency_sensitive() -> Self {
        Self { dram_drain_requests: 4, dram_drain_period: 1 }
    }

    /// A bandwidth-bound configuration: one admission every sixteen cycles —
    /// slower than a single DDR4 channel's ~9-cycle burst rate, so the
    /// admission queue (not the banks) becomes the limiter. Streaming
    /// workloads saturate this immediately, which is the regime the `timing`
    /// experiment uses to separate bandwidth- from latency-limited behaviour.
    #[must_use]
    pub const fn bandwidth_bound() -> Self {
        Self { dram_drain_requests: 1, dram_drain_period: 16 }
    }

    /// Checks that the drain rate is well-formed (at least one request per
    /// period, non-zero period).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.dram_drain_requests == 0 {
            return Err("DRAM queue must drain at least one request per period".to_string());
        }
        if self.dram_drain_period == 0 {
            return Err("DRAM queue drain period must be at least one cycle".to_string());
        }
        Ok(())
    }

    /// Sustainable admissions per cycle implied by the drain rate.
    #[must_use]
    pub fn drain_per_cycle(&self) -> f64 {
        f64::from(self.dram_drain_requests) / f64::from(self.dram_drain_period)
    }
}

/// Statistics kept by the [`BandwidthQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandwidthQueueStats {
    /// Requests admitted (demand and prefetch alike).
    pub admitted: u64,
    /// Total cycles requests spent waiting for an admission slot.
    pub queue_cycles: u64,
}

/// A rate-limited admission queue: at most `drain_requests` requests enter
/// per `drain_period` cycles, in arrival order. Arrival order is the drive
/// loop's deterministic call order, so the queue adds no nondeterminism.
#[derive(Debug, Clone)]
pub struct BandwidthQueue {
    params: TimingParams,
    /// Start cycle of the drain period currently being filled.
    period_start: Cycle,
    /// Admissions already granted inside that period.
    admitted_in_period: u32,
    stats: BandwidthQueueStats,
}

impl BandwidthQueue {
    /// Builds a queue with the given drain rate.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`TimingParams::validate`]).
    #[must_use]
    pub fn new(params: TimingParams) -> Self {
        params.validate().unwrap_or_else(|e| panic!("invalid timing parameters: {e}"));
        Self {
            params,
            period_start: 0,
            admitted_in_period: 0,
            stats: BandwidthQueueStats::default(),
        }
    }

    /// Parameters in use.
    #[must_use]
    pub const fn params(&self) -> &TimingParams {
        &self.params
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &BandwidthQueueStats {
        &self.stats
    }

    /// Admits a request arriving at `now` and returns the cycle at which it
    /// actually enters DRAM (`>= now`). The difference is the bandwidth
    /// stall, also accumulated in [`BandwidthQueueStats::queue_cycles`].
    pub fn admit(&mut self, now: Cycle) -> Cycle {
        let period = Cycle::from(self.params.dram_drain_period);
        // The queue's backlog frontier never moves backwards; a request
        // arriving after the current period simply starts a fresh one.
        if now >= self.period_start + period {
            self.period_start = now;
            self.admitted_in_period = 0;
        }
        if self.admitted_in_period >= self.params.dram_drain_requests {
            // Current period is full: the request waits for the next one.
            self.period_start += period;
            self.admitted_in_period = 0;
        }
        self.admitted_in_period += 1;
        let granted = self.period_start.max(now);
        self.stats.admitted += 1;
        self.stats.queue_cycles += granted - now;
        granted
    }
}

/// Per-core cycle accounting over the demand stream: every demand access'
/// load-to-use latency, plus the breakdown of where stall cycles came from.
/// Summed by the CPU model into total cycles, IPC and average memory-access
/// latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Demand accesses observed (loads and stores).
    pub demand_accesses: u64,
    /// Sum of load-to-use latencies over all demand accesses, in cycles.
    pub demand_latency_cycles: u64,
    /// Cycles demand accesses stalled because every MSHR was busy.
    pub mshr_stall_cycles: u64,
    /// Cycles demand accesses waited in the DRAM admission queue.
    pub dram_queue_cycles: u64,
}

impl TimingStats {
    /// Average load-to-use latency per demand access, in cycles (0 when no
    /// accesses were observed).
    #[must_use]
    pub fn avg_demand_latency(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_latency_cycles as f64 / self.demand_accesses as f64
        }
    }

    /// Merges another record into this one (aggregating across cores).
    pub fn merge(&mut self, other: &TimingStats) {
        self.demand_accesses += other.demand_accesses;
        self.demand_latency_cycles += other.demand_latency_cycles;
        self.mshr_stall_cycles += other.mshr_stall_cycles;
        self.dram_queue_cycles += other.dram_queue_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_drain_rate() {
        assert!(
            TimingParams::latency_sensitive().drain_per_cycle()
                > TimingParams::balanced().drain_per_cycle()
        );
        assert!(
            TimingParams::balanced().drain_per_cycle()
                > TimingParams::bandwidth_bound().drain_per_cycle()
        );
        for p in [
            TimingParams::balanced(),
            TimingParams::latency_sensitive(),
            TimingParams::bandwidth_bound(),
        ] {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn validate_rejects_degenerate_rates() {
        assert!(TimingParams { dram_drain_requests: 0, dram_drain_period: 1 }
            .validate()
            .unwrap_err()
            .contains("at least one request"));
        assert!(TimingParams { dram_drain_requests: 1, dram_drain_period: 0 }
            .validate()
            .unwrap_err()
            .contains("period"));
    }

    #[test]
    #[should_panic(expected = "invalid timing parameters")]
    fn queue_rejects_invalid_params() {
        let _ = BandwidthQueue::new(TimingParams { dram_drain_requests: 0, dram_drain_period: 1 });
    }

    #[test]
    fn queue_admits_within_rate_without_delay() {
        // 2 per cycle: the first two requests of each cycle pass through.
        let mut q =
            BandwidthQueue::new(TimingParams { dram_drain_requests: 2, dram_drain_period: 1 });
        assert_eq!(q.admit(10), 10);
        assert_eq!(q.admit(10), 10);
        assert_eq!(q.stats().queue_cycles, 0);
    }

    #[test]
    fn queue_delays_excess_requests_to_later_periods() {
        let mut q =
            BandwidthQueue::new(TimingParams { dram_drain_requests: 1, dram_drain_period: 4 });
        assert_eq!(q.admit(0), 0); // fills period [0, 4)
        assert_eq!(q.admit(0), 4); // next period
        assert_eq!(q.admit(0), 8);
        assert_eq!(q.admit(1), 12); // still queued behind the backlog
        assert_eq!(q.stats().admitted, 4);
        assert_eq!(q.stats().queue_cycles, 4 + 8 + 11);
    }

    #[test]
    fn queue_backlog_drains_when_idle() {
        let mut q =
            BandwidthQueue::new(TimingParams { dram_drain_requests: 1, dram_drain_period: 4 });
        assert_eq!(q.admit(0), 0);
        assert_eq!(q.admit(0), 4);
        // Long after the backlog drained, a request passes straight through.
        assert_eq!(q.admit(100), 100);
        // Arrivals inside a fresh period still respect the rate.
        assert_eq!(q.admit(101), 104);
    }

    #[test]
    fn timing_stats_average_and_merge() {
        let mut a = TimingStats {
            demand_accesses: 4,
            demand_latency_cycles: 40,
            mshr_stall_cycles: 3,
            dram_queue_cycles: 5,
        };
        assert!((a.avg_demand_latency() - 10.0).abs() < 1e-12);
        let b = TimingStats {
            demand_accesses: 1,
            demand_latency_cycles: 60,
            mshr_stall_cycles: 1,
            dram_queue_cycles: 2,
        };
        a.merge(&b);
        assert_eq!(a.demand_accesses, 5);
        assert!((a.avg_demand_latency() - 20.0).abs() < 1e-12);
        assert_eq!(a.mshr_stall_cycles, 4);
        assert_eq!(a.dram_queue_cycles, 7);
        assert_eq!(TimingStats::default().avg_demand_latency(), 0.0);
    }
}
