//! Set-associative cache with LRU replacement and per-line prefetch metadata.
//!
//! Each line remembers whether it was filled by a prefetch and, if so, by
//! which prefetcher and under which trigger PC. That metadata feeds both the
//! coverage/overprediction accounting of Fig. 10 and the usefulness feedback
//! consumed by PPF and by Alecto's Sandbox/Sample tables.

use alecto_types::{LineAddr, Pc, PrefetcherId};

use crate::config::CacheParams;
use crate::stats::CacheStats;

/// Metadata stored alongside every resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Line (tag + index combined; the model stores full line addresses).
    pub line: LineAddr,
    /// Dirty bit (stores mark lines dirty; only used for statistics).
    pub dirty: bool,
    /// Set when the line was filled by a prefetch and has not yet been
    /// referenced by a demand access.
    pub prefetched_unused: bool,
    /// Which prefetcher brought the line in (if any).
    pub prefetch_issuer: Option<PrefetcherId>,
    /// PC of the demand access that triggered the prefetch (if any).
    pub trigger_pc: Option<Pc>,
    /// LRU timestamp: larger is more recently used.
    lru_stamp: u64,
}

/// Information about a line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionInfo {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was prefetched and never used (an overprediction).
    pub was_unused_prefetch: bool,
    /// Which prefetcher had brought it in, if any.
    pub prefetch_issuer: Option<PrefetcherId>,
    /// PC that triggered the prefetch, if any.
    pub trigger_pc: Option<Pc>,
}

/// A single set-associative cache array.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    num_sets: usize,
    sets: Vec<Vec<LineMeta>>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    #[must_use]
    pub fn new(params: CacheParams) -> Self {
        let num_sets = params.num_sets();
        Self {
            params,
            num_sets,
            sets: vec![Vec::with_capacity(params.ways); num_sets],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Configuration this cache was built with.
    #[must_use]
    pub const fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the statistics (used by the hierarchy to attribute
    /// MSHR merges and stalls, which the cache array itself does not see).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Number of sets.
    #[must_use]
    pub const fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Round-trip latency of this level in cycles.
    #[must_use]
    pub const fn latency(&self) -> u64 {
        self.params.latency
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.num_sets - 1)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Probes for `line` without updating replacement state or statistics.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|e| e.line == line)
    }

    /// Demand lookup. On a hit, updates LRU state, clears the
    /// "prefetched-unused" bit, and returns the pre-access metadata so the
    /// caller can attribute prefetch usefulness.
    pub fn demand_lookup(&mut self, line: LineAddr, is_store: bool) -> Option<LineMeta> {
        let idx = self.set_index(line);
        let stamp = self.next_stamp();
        let entry = self.sets[idx].iter_mut().find(|e| e.line == line);
        match entry {
            Some(e) => {
                let before = *e;
                e.lru_stamp = stamp;
                if is_store {
                    e.dirty = true;
                }
                if e.prefetched_unused {
                    e.prefetched_unused = false;
                    self.stats.useful_prefetch_hits += 1;
                }
                self.stats.demand_hits += 1;
                Some(before)
            }
            None => {
                self.stats.demand_misses += 1;
                None
            }
        }
    }

    /// Prefetch lookup: returns `true` (and counts a redundant prefetch) if
    /// the line is already resident. Does not touch LRU state — a prefetch
    /// probe should not rejuvenate a line.
    pub fn prefetch_probe(&mut self, line: LineAddr) -> bool {
        if self.contains(line) {
            self.stats.prefetch_hits += 1;
            true
        } else {
            false
        }
    }

    /// Fills `line` into the cache, evicting the LRU way if the set is full.
    /// Returns information about the victim, if one was evicted.
    pub fn fill(
        &mut self,
        line: LineAddr,
        prefetch_issuer: Option<PrefetcherId>,
        trigger_pc: Option<Pc>,
        dirty: bool,
    ) -> Option<EvictionInfo> {
        let idx = self.set_index(line);
        let stamp = self.next_stamp();
        // Refill of an already-resident line just refreshes metadata.
        if let Some(e) = self.sets[idx].iter_mut().find(|e| e.line == line) {
            e.lru_stamp = stamp;
            e.dirty |= dirty;
            return None;
        }
        if prefetch_issuer.is_some() {
            self.stats.prefetch_fills += 1;
        }
        let meta = LineMeta {
            line,
            dirty,
            prefetched_unused: prefetch_issuer.is_some(),
            prefetch_issuer,
            trigger_pc,
            lru_stamp: stamp,
        };
        if self.sets[idx].len() < self.params.ways {
            self.sets[idx].push(meta);
            return None;
        }
        // Evict LRU (smallest stamp).
        let victim_pos = self.sets[idx]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.lru_stamp)
            .map(|(i, _)| i)
            .expect("set is non-empty when full");
        let victim = self.sets[idx][victim_pos];
        self.sets[idx][victim_pos] = meta;
        self.stats.evictions += 1;
        if victim.prefetched_unused {
            self.stats.unused_prefetch_evictions += 1;
        }
        Some(EvictionInfo {
            line: victim.line,
            was_unused_prefetch: victim.prefetched_unused,
            prefetch_issuer: victim.prefetch_issuer,
            trigger_pc: victim.trigger_pc,
        })
    }

    /// Invalidates `line` if present, returning its metadata. Used by the
    /// mostly-exclusive L3 when a line is promoted to the private levels.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let idx = self.set_index(line);
        let pos = self.sets[idx].iter().position(|e| e.line == line)?;
        Some(self.sets[idx].swap_remove(pos))
    }

    /// Number of resident lines (for tests and occupancy reporting).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all resident line metadata (read-only).
    pub fn resident_lines(&self) -> impl Iterator<Item = &LineMeta> {
        self.sets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(ways: usize, sets: usize) -> Cache {
        Cache::new(CacheParams {
            size_bytes: (ways * sets) as u64 * alecto_types::CACHE_LINE_BYTES,
            ways,
            latency: 4,
            mshrs: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny_cache(2, 2);
        assert!(c.demand_lookup(LineAddr::new(0), false).is_none());
        c.fill(LineAddr::new(0), None, None, false);
        assert!(c.demand_lookup(LineAddr::new(0), false).is_some());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(0), None, None, false);
        c.fill(LineAddr::new(1), None, None, false);
        // Touch line 0 so line 1 becomes LRU.
        c.demand_lookup(LineAddr::new(0), false);
        let evicted = c.fill(LineAddr::new(2), None, None, false).expect("eviction");
        assert_eq!(evicted.line, LineAddr::new(1));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(2)));
    }

    #[test]
    fn prefetched_unused_tracking() {
        let mut c = tiny_cache(1, 1);
        c.fill(LineAddr::new(3), Some(PrefetcherId(0)), Some(Pc::new(0x10)), false);
        // Evicting it before use counts as an unused prefetch eviction.
        let ev = c.fill(LineAddr::new(4), None, None, false).unwrap();
        assert!(ev.was_unused_prefetch);
        assert_eq!(ev.prefetch_issuer, Some(PrefetcherId(0)));
        assert_eq!(ev.trigger_pc, Some(Pc::new(0x10)));
        assert_eq!(c.stats().unused_prefetch_evictions, 1);
    }

    #[test]
    fn demand_hit_clears_prefetched_bit() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(3), Some(PrefetcherId(1)), Some(Pc::new(0x20)), false);
        let before = c.demand_lookup(LineAddr::new(3), false).unwrap();
        assert!(before.prefetched_unused);
        assert_eq!(c.stats().useful_prefetch_hits, 1);
        // Second access: bit already cleared.
        let again = c.demand_lookup(LineAddr::new(3), false).unwrap();
        assert!(!again.prefetched_unused);
        assert_eq!(c.stats().useful_prefetch_hits, 1);
    }

    #[test]
    fn prefetch_probe_counts_redundant() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(9), None, None, false);
        assert!(c.prefetch_probe(LineAddr::new(9)));
        assert!(!c.prefetch_probe(LineAddr::new(10)));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn store_marks_dirty() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(7), None, None, false);
        c.demand_lookup(LineAddr::new(7), true);
        let meta = c.resident_lines().find(|m| m.line == LineAddr::new(7)).unwrap();
        assert!(meta.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(2, 2);
        c.fill(LineAddr::new(5), None, None, false);
        assert!(c.invalidate(LineAddr::new(5)).is_some());
        assert!(!c.contains(LineAddr::new(5)));
        assert!(c.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(1), None, None, false);
        c.fill(LineAddr::new(1), None, None, true);
        assert_eq!(c.occupancy(), 1);
        assert!(c.resident_lines().next().unwrap().dirty);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = tiny_cache(4, 4);
        for i in 0..10 {
            c.fill(LineAddr::new(i), None, None, false);
        }
        assert_eq!(c.occupancy(), 10);
    }
}
