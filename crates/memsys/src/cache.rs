//! Set-associative cache with LRU replacement and per-line prefetch metadata.
//!
//! Each line remembers whether it was filled by a prefetch and, if so, by
//! which prefetcher and under which trigger PC. That metadata feeds both the
//! coverage/overprediction accounting of Fig. 10 and the usefulness feedback
//! consumed by PPF and by Alecto's Sandbox/Sample tables.
//!
//! # Hot-path layout
//!
//! Every simulated memory access performs at least one tag search, so the
//! array is stored as flat per-set *hot blocks*: a packed `u64` tag lane
//! followed by a packed LRU-stamp lane (`[tags × ways | stamps × ways]`,
//! one or two cache lines per lane at Table I associativities). The tag
//! search is a branchless masked compare over the tag lane, the LRU victim
//! search a register-held minimum over the stamp lane, and the dirty /
//! prefetched-unused flags ride in the tag words' free high bits — so a
//! demand access touches nothing but its set's hot block. The prefetch
//! attribution (issuer, trigger PC) lives in a separate cold array that is
//! written by prefetch fills and read only while a way's prefetched-unused
//! bit is set. No per-access allocation happens anywhere on the lookup/fill
//! path. The replacement and eviction semantics are bit-for-bit those of
//! the original `Vec<Vec<LineMeta>>` implementation (LRU stamps are unique,
//! so victim choice never depends on storage order); the determinism suite
//! and the golden-JSON test pin this down.

use alecto_types::{LineAddr, Pc, PrefetcherId};

use crate::config::CacheParams;
use crate::stats::CacheStats;

/// Sentinel tag word for an empty way. Real tag words always have a line
/// field below [`TAG_LINE_MASK`] (line addresses are byte addresses shifted
/// right by 6, so they use at most 58 bits), hence can never equal this.
const NO_TAG: u64 = u64::MAX;

/// Tag-word bit: the line is dirty.
const TAG_DIRTY: u64 = 1 << 62;
/// Tag-word bit: the line was prefetched and not yet demand-referenced.
const TAG_PREFETCHED_UNUSED: u64 = 1 << 63;
/// Low 62 bits of a tag word: the line address. The two flag bits ride in
/// the tag's free high bits so the demand path reads and writes a single
/// word per way — the cold issuer/trigger array is only consulted when the
/// prefetched-unused bit is actually set.
const TAG_LINE_MASK: u64 = (1 << 62) - 1;

/// Metadata stored alongside every resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Line (tag + index combined; the model stores full line addresses).
    pub line: LineAddr,
    /// Dirty bit (stores mark lines dirty; only used for statistics).
    pub dirty: bool,
    /// Set when the line was filled by a prefetch and has not yet been
    /// referenced by a demand access.
    pub prefetched_unused: bool,
    /// Which prefetcher brought the line in (if any).
    pub prefetch_issuer: Option<PrefetcherId>,
    /// PC of the demand access that triggered the prefetch (if any).
    pub trigger_pc: Option<Pc>,
}

/// Information about a line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionInfo {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was prefetched and never used (an overprediction).
    pub was_unused_prefetch: bool,
    /// Which prefetcher had brought it in, if any.
    pub prefetch_issuer: Option<PrefetcherId>,
    /// PC that triggered the prefetch, if any.
    pub trigger_pc: Option<Pc>,
}

/// Cold per-way state: the prefetch attribution. Written only by prefetch
/// fills and read only while a way's [`TAG_PREFETCHED_UNUSED`] bit is set,
/// so purely demand-driven traffic never touches this array — the access
/// path stays inside the per-set hot block.
#[derive(Debug, Clone, Copy)]
struct ColdMeta {
    /// Which prefetcher brought the line in.
    issuer: Option<PrefetcherId>,
    /// PC of the demand access that triggered the prefetch.
    trigger: Option<Pc>,
}

impl ColdMeta {
    const EMPTY: ColdMeta = ColdMeta { issuer: None, trigger: None };
}

/// A single set-associative cache array (flat tag/metadata arrays, see the
/// module docs for the layout rationale).
///
/// The hot state lives in one flat `u64` array laid out as per-set blocks of
/// `[tags × ways | stamps × ways]`: for an 8-way set that is two cache lines
/// holding everything the tag search *and* the LRU victim search need, and
/// both searches are branchless full-set scans the compiler can vectorise.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    num_sets: usize,
    ways: usize,
    /// Per-set hot blocks: `[tags × ways | stamps × ways]`, `2 × ways` words
    /// per set. A tag is [`NO_TAG`] when the way is empty; stamps grow with
    /// recency.
    hot: Box<[u64]>,
    /// Cold per-way metadata, indexed `set × ways + way`.
    cold: Box<[ColdMeta]>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid — in particular if it does not
    /// yield a power-of-two number of sets, which the index mask
    /// (`line & (num_sets - 1)`) silently requires (see
    /// [`CacheParams::validate`]).
    #[must_use]
    pub fn new(params: CacheParams) -> Self {
        let num_sets = params.num_sets();
        let ways = params.ways;
        // The wide tag scan accumulates one match bit per way in a u64.
        assert!(ways <= 64, "associativity {ways} exceeds the 64-way scan-mask limit");
        let entries = num_sets * ways;
        let mut hot = vec![0u64; 2 * entries].into_boxed_slice();
        for set in 0..num_sets {
            let block = set * 2 * ways;
            hot[block..block + ways].fill(NO_TAG);
        }
        Self {
            params,
            num_sets,
            ways,
            hot,
            cold: vec![ColdMeta::EMPTY; entries].into_boxed_slice(),
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Start of the hot block (`[tags | stamps]`) of `line`'s set.
    fn hot_block(&self, line: LineAddr) -> usize {
        self.set_index(line) * 2 * self.ways
    }

    /// Index into the cold array for `way` of the set whose hot block starts
    /// at `block` (`block / 2` recovers `set × ways`).
    const fn cold_index(block: usize, way: usize) -> usize {
        block / 2 + way
    }

    /// Branchless scan of the tag lane of the set at `block`: returns the
    /// way whose line field matches, with its tag word. All `ways` tags are
    /// compared without an early exit — the packed lane is one or two cache
    /// lines, and trading the data-dependent exit branch (a guaranteed
    /// misprediction source per hit) for straight-line compares makes this
    /// loop, the single hottest code in the simulator, measurably faster.
    ///
    /// The compares run four ways wide over the packed lane, folding each
    /// way's verdict into one match-bitmask word (the shape the compiler
    /// lowers to a SIMD compare + movemask); the lowest set bit is the
    /// answer, preserving the lowest-way-wins tie-break of the old reverse
    /// scan (lines are unique per set, so ties cannot happen anyway). An
    /// empty way's masked line field is `TAG_LINE_MASK` itself, which no
    /// real (< 2^58) line can equal.
    fn find_way(&self, block: usize, line: u64) -> Option<(usize, u64)> {
        let set = &self.hot[block..block + self.ways];
        let mut mask = 0u64;
        let mut chunks = set.chunks_exact(4);
        let mut base = 0u32;
        for chunk in &mut chunks {
            mask |= u64::from(chunk[0] & TAG_LINE_MASK == line) << base;
            mask |= u64::from(chunk[1] & TAG_LINE_MASK == line) << (base + 1);
            mask |= u64::from(chunk[2] & TAG_LINE_MASK == line) << (base + 2);
            mask |= u64::from(chunk[3] & TAG_LINE_MASK == line) << (base + 3);
            base += 4;
        }
        for (i, &t) in chunks.remainder().iter().enumerate() {
            mask |= u64::from(t & TAG_LINE_MASK == line) << (base + i as u32);
        }
        if mask == 0 {
            None
        } else {
            let way = mask.trailing_zeros() as usize;
            Some((way, set[way]))
        }
    }

    /// Reconstructs the metadata view of `way` in the set at `block`. The
    /// cold attribution is read only when the way's prefetched-unused bit is
    /// set — for every other line the issuer/trigger are reported as `None`
    /// (no consumer reads them outside that bit, see the hierarchy).
    fn meta_at(&self, block: usize, way: usize) -> LineMeta {
        let t = self.hot[block + way];
        let prefetched_unused = t & TAG_PREFETCHED_UNUSED != 0;
        let (prefetch_issuer, trigger_pc) = if prefetched_unused {
            let m = self.cold[Self::cold_index(block, way)];
            (m.issuer, m.trigger)
        } else {
            (None, None)
        };
        LineMeta {
            line: LineAddr::new(t & TAG_LINE_MASK),
            dirty: t & TAG_DIRTY != 0,
            prefetched_unused,
            prefetch_issuer,
            trigger_pc,
        }
    }

    /// Configuration this cache was built with.
    #[must_use]
    pub const fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the statistics (used by the hierarchy to attribute
    /// MSHR merges and stalls, which the cache array itself does not see).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Number of sets.
    #[must_use]
    pub const fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Round-trip latency of this level in cycles.
    #[must_use]
    pub const fn latency(&self) -> u64 {
        self.params.latency
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.num_sets - 1)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Probes for `line` without updating replacement state or statistics.
    #[must_use]
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        let block = self.hot_block(line);
        self.find_way(block, line.raw()).is_some()
    }

    /// Batched residency probe: pushes one `bool` per line onto `out`, in
    /// order, without touching replacement state or statistics. Exactly
    /// equivalent to calling [`Cache::contains`] per line — the batch exists
    /// to amortise call dispatch over the wide tag scan, not to change
    /// semantics.
    pub fn contains_batch(&self, lines: &[LineAddr], out: &mut Vec<bool>) {
        out.reserve(lines.len());
        for &line in lines {
            out.push(self.contains(line));
        }
    }

    /// Demand lookup. On a hit, updates LRU state, clears the
    /// "prefetched-unused" bit, and returns the pre-access metadata so the
    /// caller can attribute prefetch usefulness.
    #[inline]
    pub fn demand_lookup(&mut self, line: LineAddr, is_store: bool) -> Option<LineMeta> {
        // The stamp advances on misses too, exactly like the original
        // implementation — LRU recency is global, not per-hit.
        let stamp = self.next_stamp();
        let block = self.hot_block(line);
        let Some((way, t)) = self.find_way(block, line.raw()) else {
            self.stats.demand_misses += 1;
            return None;
        };
        let prefetched_unused = t & TAG_PREFETCHED_UNUSED != 0;
        let (prefetch_issuer, trigger_pc) = if prefetched_unused {
            let m = self.cold[Self::cold_index(block, way)];
            (m.issuer, m.trigger)
        } else {
            (None, None)
        };
        let before = LineMeta {
            line,
            dirty: t & TAG_DIRTY != 0,
            prefetched_unused,
            prefetch_issuer,
            trigger_pc,
        };
        self.hot[block + self.ways + way] = stamp;
        // Write the tag word back only when a flag actually changes — the
        // common load-hit leaves it untouched.
        if is_store && t & TAG_DIRTY == 0 {
            self.hot[block + way] = (t | TAG_DIRTY) & !TAG_PREFETCHED_UNUSED;
        } else if prefetched_unused {
            self.hot[block + way] = t & !TAG_PREFETCHED_UNUSED;
        }
        if prefetched_unused {
            self.stats.useful_prefetch_hits += 1;
        }
        self.stats.demand_hits += 1;
        Some(before)
    }

    /// Prefetch lookup: returns `true` (and counts a redundant prefetch) if
    /// the line is already resident. Does not touch LRU state — a prefetch
    /// probe should not rejuvenate a line.
    #[inline]
    pub fn prefetch_probe(&mut self, line: LineAddr) -> bool {
        if self.contains(line) {
            self.stats.prefetch_hits += 1;
            true
        } else {
            false
        }
    }

    /// Fills `line` into the cache, evicting the LRU way if the set is full.
    /// Returns information about the victim, if one was evicted.
    #[inline]
    pub fn fill(
        &mut self,
        line: LineAddr,
        prefetch_issuer: Option<PrefetcherId>,
        trigger_pc: Option<Pc>,
        dirty: bool,
    ) -> Option<EvictionInfo> {
        let stamp = self.next_stamp();
        let block = self.hot_block(line);
        // One fused pass over the hot block gathers everything a fill can
        // need: the matching way, the first empty way, and the LRU victim
        // (smallest stamp; `<=` under the reverse scan keeps the earliest
        // way, matching the original `min_by_key` over push order — ties are
        // impossible anyway since stamps are unique).
        let ways = self.ways;
        let (tags, stamps) = self.hot[block..block + 2 * ways].split_at(ways);
        let mut matching = usize::MAX;
        let mut empty = usize::MAX;
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for way in (0..ways).rev() {
            let t = tags[way];
            if t & TAG_LINE_MASK == line.raw() {
                matching = way;
            }
            if t == NO_TAG {
                empty = way;
            }
            let s = stamps[way];
            if s <= best {
                best = s;
                victim = way;
            }
        }
        // Refill of an already-resident line just refreshes metadata.
        if matching != usize::MAX {
            self.hot[block + ways + matching] = stamp;
            if dirty {
                self.hot[block + matching] |= TAG_DIRTY;
            }
            return None;
        }
        if prefetch_issuer.is_some() {
            self.stats.prefetch_fills += 1;
        }
        // Fill an empty way if one exists (equivalent to the old Vec push —
        // the Vec never held holes, so "any empty way" is "set not full").
        if empty != usize::MAX {
            self.write_way(block, empty, line, prefetch_issuer, trigger_pc, dirty, stamp);
            return None;
        }
        let evicted = self.meta_at(block, victim);
        self.stats.evictions += 1;
        if evicted.prefetched_unused {
            self.stats.unused_prefetch_evictions += 1;
        }
        self.write_way(block, victim, line, prefetch_issuer, trigger_pc, dirty, stamp);
        Some(EvictionInfo {
            line: evicted.line,
            was_unused_prefetch: evicted.prefetched_unused,
            prefetch_issuer: evicted.prefetch_issuer,
            trigger_pc: evicted.trigger_pc,
        })
    }

    /// Overwrites `way` of the set at `block` with a freshly filled line.
    #[allow(clippy::too_many_arguments)]
    fn write_way(
        &mut self,
        block: usize,
        way: usize,
        line: LineAddr,
        prefetch_issuer: Option<PrefetcherId>,
        trigger_pc: Option<Pc>,
        dirty: bool,
        stamp: u64,
    ) {
        // The two flag bits ride in the tag word; a line overflowing into
        // them would silently corrupt the array, so reject it loudly (real
        // lines are byte addresses >> 6 and use at most 58 bits).
        assert!(line.raw() <= TAG_LINE_MASK >> 4, "line address exceeds the 58-bit tag field");
        let mut t = line.raw();
        if dirty {
            t |= TAG_DIRTY;
        }
        if prefetch_issuer.is_some() {
            t |= TAG_PREFETCHED_UNUSED;
            // Cold attribution is only ever read under the prefetched-unused
            // bit, so demand fills skip this write entirely.
            self.cold[Self::cold_index(block, way)] =
                ColdMeta { issuer: prefetch_issuer, trigger: trigger_pc };
        }
        self.hot[block + way] = t;
        self.hot[block + self.ways + way] = stamp;
    }

    /// Invalidates `line` if present, returning its metadata. Used by the
    /// mostly-exclusive L3 when a line is promoted to the private levels.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let block = self.hot_block(line);
        let (way, _) = self.find_way(block, line.raw())?;
        let meta = self.meta_at(block, way);
        self.hot[block + way] = NO_TAG;
        self.hot[block + self.ways + way] = 0;
        Some(meta)
    }

    /// Number of resident lines (for tests and occupancy reporting).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        (0..self.num_sets)
            .map(|set| {
                let block = set * 2 * self.ways;
                self.hot[block..block + self.ways].iter().filter(|&&t| t != NO_TAG).count()
            })
            .sum()
    }

    /// Iterates over all resident line metadata (read-only snapshot values).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineMeta> + '_ {
        (0..self.num_sets).flat_map(move |set| {
            let block = set * 2 * self.ways;
            (0..self.ways)
                .filter(move |&w| self.hot[block + w] != NO_TAG)
                .map(move |w| self.meta_at(block, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(ways: usize, sets: usize) -> Cache {
        Cache::new(CacheParams {
            size_bytes: (ways * sets) as u64 * alecto_types::CACHE_LINE_BYTES,
            ways,
            latency: 4,
            miss_latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny_cache(2, 2);
        assert!(c.demand_lookup(LineAddr::new(0), false).is_none());
        c.fill(LineAddr::new(0), None, None, false);
        assert!(c.demand_lookup(LineAddr::new(0), false).is_some());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(0), None, None, false);
        c.fill(LineAddr::new(1), None, None, false);
        // Touch line 0 so line 1 becomes LRU.
        c.demand_lookup(LineAddr::new(0), false);
        let evicted = c.fill(LineAddr::new(2), None, None, false).expect("eviction");
        assert_eq!(evicted.line, LineAddr::new(1));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(2)));
    }

    #[test]
    fn prefetched_unused_tracking() {
        let mut c = tiny_cache(1, 1);
        c.fill(LineAddr::new(3), Some(PrefetcherId(0)), Some(Pc::new(0x10)), false);
        // Evicting it before use counts as an unused prefetch eviction.
        let ev = c.fill(LineAddr::new(4), None, None, false).unwrap();
        assert!(ev.was_unused_prefetch);
        assert_eq!(ev.prefetch_issuer, Some(PrefetcherId(0)));
        assert_eq!(ev.trigger_pc, Some(Pc::new(0x10)));
        assert_eq!(c.stats().unused_prefetch_evictions, 1);
    }

    #[test]
    fn demand_hit_clears_prefetched_bit() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(3), Some(PrefetcherId(1)), Some(Pc::new(0x20)), false);
        let before = c.demand_lookup(LineAddr::new(3), false).unwrap();
        assert!(before.prefetched_unused);
        assert_eq!(c.stats().useful_prefetch_hits, 1);
        // Second access: bit already cleared.
        let again = c.demand_lookup(LineAddr::new(3), false).unwrap();
        assert!(!again.prefetched_unused);
        assert_eq!(c.stats().useful_prefetch_hits, 1);
    }

    #[test]
    fn prefetch_probe_counts_redundant() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(9), None, None, false);
        assert!(c.prefetch_probe(LineAddr::new(9)));
        assert!(!c.prefetch_probe(LineAddr::new(10)));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn store_marks_dirty() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(7), None, None, false);
        c.demand_lookup(LineAddr::new(7), true);
        let meta = c.resident_lines().find(|m| m.line == LineAddr::new(7)).unwrap();
        assert!(meta.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny_cache(2, 2);
        c.fill(LineAddr::new(5), None, None, false);
        assert!(c.invalidate(LineAddr::new(5)).is_some());
        assert!(!c.contains(LineAddr::new(5)));
        assert!(c.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(1), None, None, false);
        c.fill(LineAddr::new(1), None, None, true);
        assert_eq!(c.occupancy(), 1);
        assert!(c.resident_lines().next().unwrap().dirty);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = tiny_cache(4, 4);
        for i in 0..10 {
            c.fill(LineAddr::new(i), None, None, false);
        }
        assert_eq!(c.occupancy(), 10);
    }

    #[test]
    fn fill_reuses_an_invalidated_way() {
        // An invalidated way becomes a hole in the flat arrays; the next fill
        // to the set must land there instead of evicting a live line.
        let mut c = tiny_cache(2, 1);
        c.fill(LineAddr::new(0), None, None, false);
        c.fill(LineAddr::new(1), None, None, false);
        assert!(c.invalidate(LineAddr::new(0)).is_some());
        assert!(c.fill(LineAddr::new(2), None, None, false).is_none(), "no eviction expected");
        assert!(c.contains(LineAddr::new(1)));
        assert!(c.contains(LineAddr::new(2)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn wide_scan_finds_every_way_at_odd_associativities() {
        // Exercise the chunked compare's remainder path (ways % 4 != 0) and
        // the lowest-way-wins selection at every resident position.
        for ways in [1usize, 2, 3, 4, 5, 7, 8, 12, 16] {
            let mut c = tiny_cache(ways, 1);
            for i in 0..ways as u64 {
                c.fill(LineAddr::new(i + 1), None, None, false);
            }
            for i in 0..ways as u64 {
                assert!(c.contains(LineAddr::new(i + 1)), "{ways} ways, line {i}");
            }
            assert!(!c.contains(LineAddr::new(ways as u64 + 1)));
        }
    }

    #[test]
    fn batched_probe_matches_scalar_probes() {
        let mut c = tiny_cache(4, 4);
        for i in 0..9 {
            c.fill(LineAddr::new(i * 3), None, None, false);
        }
        let lines: Vec<LineAddr> = (0..30).map(LineAddr::new).collect();
        let mut batched = Vec::new();
        c.contains_batch(&lines, &mut batched);
        let scalar: Vec<bool> = lines.iter().map(|&l| c.contains(l)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_geometry_is_rejected() {
        let _ = Cache::new(CacheParams {
            size_bytes: 3 * alecto_types::CACHE_LINE_BYTES,
            ways: 1,
            latency: 1,
            miss_latency: 1,
            mshrs: 1,
        });
    }

    #[test]
    fn eviction_order_is_stamp_based_not_storage_based() {
        // Touch lines in an order that, under the old Vec layout, shuffles
        // storage positions (invalidate + refill); the LRU victim must still
        // be the least recently *stamped* line.
        let mut c = tiny_cache(3, 1);
        for i in 0..3 {
            c.fill(LineAddr::new(i), None, None, false);
        }
        c.demand_lookup(LineAddr::new(0), false); // 1 is now LRU
        c.invalidate(LineAddr::new(2));
        c.fill(LineAddr::new(2), None, None, false); // refill into the hole
        let ev = c.fill(LineAddr::new(9), None, None, false).expect("full set evicts");
        assert_eq!(ev.line, LineAddr::new(1));
    }
}
