//! Cycle-approximate memory-system model: set-associative caches with LRU
//! replacement and MSHRs, a banked/channelled DRAM model, and a three-level
//! hierarchy (private L1D and L2, shared L3) matching Table I of the paper.
//!
//! The hierarchy is driven by the [`cpu`] crate one demand access or prefetch
//! request at a time, with an explicit cycle timestamp. It is *functional +
//! timing*: lookups update real tag arrays, while latency is computed from
//! per-level round-trip latencies, MSHR occupancy and DRAM bank/bus timing.
//!
//! # Example
//!
//! ```
//! use memsys::{Hierarchy, HierarchyParams};
//! use alecto_types::{LineAddr, Pc, PrefetcherId};
//!
//! let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
//! let r = hier.demand_access(0, LineAddr::new(0x1000), 0);
//! assert!(r.latency > 0);               // cold miss goes to DRAM
//! let r2 = hier.demand_access(0, LineAddr::new(0x1000), r.completion_cycle + 1);
//! assert_eq!(r2.hit_level, Some(memsys::Level::L1));
//! ```
//!
//! [`cpu`]: https://docs.rs/cpu

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod stats;
pub mod timing;

pub use cache::{Cache, EvictionInfo, LineMeta};
pub use config::{CacheParams, DramKind, DramParams, HierarchyParams, Level};
pub use dram::DramModel;
pub use dram::DramStats;
pub use hierarchy::{
    CoverageEvent, DemandRequest, DemandResult, Hierarchy, PrefetchFeedback, PrefetchIssueResult,
};
pub use mshr::{MshrEntry, MshrFile};
pub use stats::{CacheStats, Cycle, PrefetchQuality};
pub use timing::{BandwidthQueue, BandwidthQueueStats, TimingParams, TimingStats};
