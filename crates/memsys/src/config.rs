//! Memory-system configuration mirroring Table I of the paper.

/// Cache levels in the modelled hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Private L1 data cache.
    L1,
    /// Private, mostly-inclusive L2.
    L2,
    /// Shared, mostly-exclusive L3 (LLC).
    L3,
    /// Main memory.
    Dram,
}

impl Level {
    /// All on-chip cache levels, ordered from closest to the core.
    pub const CACHES: [Level; 3] = [Level::L1, Level::L2, Level::L3];
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Round-trip load-to-use latency of a *hit* at this level, in core
    /// cycles.
    pub latency: u64,
    /// Extra tag-check cycles a request pays at this level when it *misses*
    /// and has to be forwarded outward (the lookup is not free: the request
    /// occupies the tag pipeline before the miss is known).
    pub miss_latency: u64,
    /// Number of MSHRs (maximum outstanding misses).
    pub mshrs: usize,
}

impl CacheParams {
    /// Checks that the geometry is simulable, in particular that it yields a
    /// **power-of-two** number of sets: the set index is computed as
    /// `line & (num_sets - 1)`, and with a non-power-of-two count that mask
    /// would silently alias most sets away (e.g. 3 sets would only ever use
    /// sets 0–1 … and the "missing" capacity would distort every miss-rate
    /// figure). Configurations that fail this check must be rejected, not
    /// rounded, so sweep scripts cannot quietly simulate a different cache
    /// than they asked for.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("cache must have at least one way".to_string());
        }
        let lines = self.size_bytes / alecto_types::CACHE_LINE_BYTES;
        let sets = lines as usize / self.ways;
        if sets == 0 {
            return Err("cache must have at least one set".to_string());
        }
        if !sets.is_power_of_two() {
            return Err(format!(
                "number of sets must be a power of two, got {sets} \
                 ({} B / 64 B lines / {} ways): the set-index mask would alias sets",
                self.size_bytes, self.ways
            ));
        }
        Ok(())
    }

    /// Number of sets implied by size, 64 B lines and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not yield a power-of-two, non-zero
    /// number of sets (see [`CacheParams::validate`]).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.validate().unwrap_or_else(|e| panic!("{e}"));
        (self.size_bytes / alecto_types::CACHE_LINE_BYTES) as usize / self.ways
    }

    /// Table I: 32 KB, 8-way L1 data cache, 4-cycle round trip, 16 MSHRs.
    /// A miss costs one extra tag-check cycle before escalating.
    #[must_use]
    pub const fn l1d_default() -> Self {
        Self { size_bytes: 32 * 1024, ways: 8, latency: 4, miss_latency: 1, mshrs: 16 }
    }

    /// Table I: 256 KB, 8-way L2, 15-cycle round trip, 32 MSHRs, 2-cycle
    /// miss escalation.
    #[must_use]
    pub const fn l2_default() -> Self {
        Self { size_bytes: 256 * 1024, ways: 8, latency: 15, miss_latency: 2, mshrs: 32 }
    }

    /// Table I: 2 MB per core, 16-way shared L3, 35-cycle round trip,
    /// 64 MSHRs per LLC bank (one bank per core in this model), 4-cycle miss
    /// escalation before the request heads off-chip.
    #[must_use]
    pub fn l3_default(cores: usize) -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024 * cores as u64,
            ways: 16,
            latency: 35,
            miss_latency: 4,
            mshrs: 64 * cores,
        }
    }
}

/// Supported DRAM device generations (Fig. 16 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// DDR3-1600: 1600 MT/s, 12.8 GB/s per channel.
    Ddr3_1600,
    /// DDR4-2400: 2400 MT/s, 19.2 GB/s per channel (Table I default).
    Ddr4_2400,
}

/// DRAM organisation and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramParams {
    /// Device generation, which sets the per-channel bandwidth.
    pub kind: DramKind,
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank (Table I: 8).
    pub banks_per_rank: usize,
    /// Core clock frequency in GHz used to convert nanoseconds to cycles.
    pub core_ghz: f64,
    /// Row activate latency (tRCD) in nanoseconds.
    pub trcd_ns: f64,
    /// Column access latency (tCAS) in nanoseconds.
    pub tcas_ns: f64,
    /// Precharge latency (tRP) in nanoseconds.
    pub trp_ns: f64,
    /// Row-buffer size in bytes (8 KiB typical).
    pub row_bytes: u64,
}

impl DramParams {
    /// Table I single-core configuration: one channel, one rank per channel.
    #[must_use]
    pub fn single_core(kind: DramKind) -> Self {
        Self::with_channels(kind, 1, 1)
    }

    /// Table I multi-core configuration: `#cores / 2` channels (at least one),
    /// two ranks per channel.
    #[must_use]
    pub fn multi_core(kind: DramKind, cores: usize) -> Self {
        Self::with_channels(kind, (cores / 2).max(1), 2)
    }

    fn with_channels(kind: DramKind, channels: usize, ranks: usize) -> Self {
        Self {
            kind,
            channels,
            ranks_per_channel: ranks,
            banks_per_rank: 8,
            core_ghz: 2.5,
            trcd_ns: 14.0,
            tcas_ns: 14.0,
            trp_ns: 14.0,
            row_bytes: 8 * 1024,
        }
    }

    /// Per-channel bandwidth in bytes per nanosecond.
    #[must_use]
    pub fn channel_bytes_per_ns(&self) -> f64 {
        match self.kind {
            DramKind::Ddr3_1600 => 12.8,
            DramKind::Ddr4_2400 => 19.2,
        }
    }

    /// Time to stream one 64 B cache line over the channel, in core cycles.
    #[must_use]
    pub fn burst_cycles(&self) -> u64 {
        let ns = alecto_types::CACHE_LINE_BYTES as f64 / self.channel_bytes_per_ns();
        self.ns_to_cycles(ns)
    }

    /// Converts nanoseconds to core cycles (rounded up, at least 1).
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        ((ns * self.core_ghz).ceil() as u64).max(1)
    }

    /// Total number of banks across the whole memory system.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Full hierarchy configuration for `cores` cores.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyParams {
    /// Number of cores (each with private L1D and L2).
    pub cores: usize,
    /// Private L1 data cache parameters.
    pub l1d: CacheParams,
    /// Private L2 parameters.
    pub l2: CacheParams,
    /// Shared L3 parameters.
    pub l3: CacheParams,
    /// DRAM parameters.
    pub dram: DramParams,
    /// System-level timing knobs (DRAM admission/bandwidth queue).
    pub timing: crate::timing::TimingParams,
}

impl HierarchyParams {
    /// Validates every cache level of the hierarchy (see
    /// [`CacheParams::validate`]) plus the core count, so a bad sweep
    /// configuration fails with one message naming the level instead of a
    /// panic deep inside `Cache::new`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid level.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("at least one core required".to_string());
        }
        for (label, level) in [("L1D", &self.l1d), ("L2", &self.l2), ("L3", &self.l3)] {
            level.validate().map_err(|e| format!("{label}: {e}"))?;
        }
        self.timing.validate().map_err(|e| format!("timing: {e}"))?;
        Ok(())
    }

    /// The Skylake-like configuration of Table I for `cores` cores with
    /// DDR4-2400 memory.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn skylake_like(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let dram = if cores == 1 {
            DramParams::single_core(DramKind::Ddr4_2400)
        } else {
            DramParams::multi_core(DramKind::Ddr4_2400, cores)
        };
        Self {
            cores,
            l1d: CacheParams::l1d_default(),
            l2: CacheParams::l2_default(),
            l3: CacheParams::l3_default(cores),
            dram,
            timing: crate::timing::TimingParams::default(),
        }
    }

    /// Same as [`HierarchyParams::skylake_like`] but with an explicit LLC
    /// capacity per core (Fig. 15 sweeps 0.5–4 MB per core).
    #[must_use]
    pub fn with_llc_per_core(cores: usize, llc_bytes_per_core: u64) -> Self {
        let mut p = Self::skylake_like(cores);
        p.l3.size_bytes = llc_bytes_per_core * cores as u64;
        p
    }

    /// Same as [`HierarchyParams::skylake_like`] but with the given DRAM kind
    /// (Fig. 16 compares DDR3-1600 to DDR4-2400).
    #[must_use]
    pub fn with_dram(cores: usize, kind: DramKind) -> Self {
        let mut p = Self::skylake_like(cores);
        p.dram = if cores == 1 {
            DramParams::single_core(kind)
        } else {
            DramParams::multi_core(kind, cores)
        };
        p
    }

    /// Same as [`HierarchyParams::skylake_like`] but with explicit timing
    /// knobs (the `timing` experiment sweeps latency-sensitive vs
    /// bandwidth-bound DRAM admission rates).
    #[must_use]
    pub fn with_timing(cores: usize, timing: crate::timing::TimingParams) -> Self {
        let mut p = Self::skylake_like(cores);
        p.timing = timing;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let l1 = CacheParams::l1d_default();
        assert_eq!(l1.num_sets(), 64);
        let l2 = CacheParams::l2_default();
        assert_eq!(l2.num_sets(), 512);
        let l3 = CacheParams::l3_default(1);
        assert_eq!(l3.num_sets(), 2048);
        let l3x8 = CacheParams::l3_default(8);
        assert_eq!(l3x8.num_sets(), 8 * 2048);
    }

    #[test]
    fn dram_bandwidth_ordering() {
        let d3 = DramParams::single_core(DramKind::Ddr3_1600);
        let d4 = DramParams::single_core(DramKind::Ddr4_2400);
        assert!(d3.burst_cycles() > d4.burst_cycles());
        assert!(d4.channel_bytes_per_ns() > d3.channel_bytes_per_ns());
    }

    #[test]
    fn multicore_channels_scale() {
        let d = DramParams::multi_core(DramKind::Ddr4_2400, 8);
        assert_eq!(d.channels, 4);
        assert_eq!(d.ranks_per_channel, 2);
        assert_eq!(d.total_banks(), 4 * 2 * 8);
        let d1 = DramParams::multi_core(DramKind::Ddr4_2400, 1);
        assert_eq!(d1.channels, 1);
    }

    #[test]
    fn hierarchy_presets() {
        let h = HierarchyParams::skylake_like(8);
        assert_eq!(h.cores, 8);
        assert_eq!(h.l3.size_bytes, 16 * 1024 * 1024);
        let h = HierarchyParams::with_llc_per_core(2, 512 * 1024);
        assert_eq!(h.l3.size_bytes, 1024 * 1024);
        let h = HierarchyParams::with_dram(1, DramKind::Ddr3_1600);
        assert_eq!(h.dram.kind, DramKind::Ddr3_1600);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = HierarchyParams::skylake_like(0);
    }

    #[test]
    fn non_power_of_two_sets_are_rejected() {
        // 3 sets × 1 way × 64 B: the mask `line & 2` would alias set 2 away.
        let bad =
            CacheParams { size_bytes: 3 * 64, ways: 1, latency: 1, miss_latency: 1, mshrs: 1 };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("power of two"), "unexpected message: {err}");
        assert!(err.contains("alias"), "the error must explain the mask aliasing: {err}");
        // Degenerate geometries are caught too.
        assert!(CacheParams { size_bytes: 0, ways: 1, latency: 1, miss_latency: 1, mshrs: 1 }
            .validate()
            .unwrap_err()
            .contains("at least one set"));
        assert!(CacheParams { size_bytes: 64, ways: 0, latency: 1, miss_latency: 1, mshrs: 1 }
            .validate()
            .unwrap_err()
            .contains("at least one way"));
        // All Table I presets pass.
        for good in
            [CacheParams::l1d_default(), CacheParams::l2_default(), CacheParams::l3_default(8)]
        {
            assert!(good.validate().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic_at_construction() {
        let _ = CacheParams { size_bytes: 3 * 64, ways: 1, latency: 1, miss_latency: 1, mshrs: 1 }
            .num_sets();
    }

    #[test]
    fn hierarchy_validation_names_the_level() {
        let mut h = HierarchyParams::skylake_like(1);
        h.l2.size_bytes = 3 * 64 * 8; // 3 sets at 8 ways
        let err = h.validate().unwrap_err();
        assert!(err.starts_with("L2:"), "level must be named: {err}");
        assert!(HierarchyParams::skylake_like(8).validate().is_ok());
    }

    #[test]
    fn hierarchy_validation_covers_timing() {
        let mut h = HierarchyParams::skylake_like(1);
        h.timing.dram_drain_period = 0;
        let err = h.validate().unwrap_err();
        assert!(err.starts_with("timing:"), "timing must be named: {err}");
        let t = HierarchyParams::with_timing(2, crate::timing::TimingParams::bandwidth_bound());
        assert_eq!(t.timing, crate::timing::TimingParams::bandwidth_bound());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let d = DramParams::single_core(DramKind::Ddr4_2400);
        assert_eq!(d.ns_to_cycles(0.1), 1);
        assert_eq!(d.ns_to_cycles(14.0), 35);
    }
}
