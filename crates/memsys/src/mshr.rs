//! Miss Status Holding Registers: track outstanding misses per cache so that
//! (a) repeated misses to the same line merge instead of re-fetching, and
//! (b) the number of outstanding misses — and therefore the exploitable
//! memory-level parallelism — is bounded, as in Table I (16/32/64 MSHRs).

use std::collections::BTreeMap;

use alecto_types::{LineAddr, PrefetcherId};

use crate::stats::Cycle;

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Line being fetched.
    pub line: LineAddr,
    /// Cycle at which the fill completes and the entry retires.
    pub completion: Cycle,
    /// Whether the entry was allocated by a prefetch (and by whom).
    pub prefetch_issuer: Option<PrefetcherId>,
    /// Whether a demand access has already merged into this entry.
    pub demand_merged: bool,
}

/// A fixed-capacity file of outstanding misses.
///
/// Entries are kept in a `BTreeMap` rather than a `HashMap` on purpose:
/// victim selection under structural hazards breaks completion-time ties by
/// iteration order, and a hash map's order varies from process to process,
/// which would make simulation results irreproducible. With an ordered map
/// (plus the explicit line-address tie-breaks below) every run — serial or
/// on a worker thread of the parallel harness — is byte-identical.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: BTreeMap<LineAddr, MshrEntry>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self { capacity, entries: BTreeMap::new() }
    }

    /// Maximum number of outstanding misses.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently outstanding misses (after retiring entries whose
    /// completion is `<= now`).
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// Removes entries that completed at or before `now`.
    pub fn retire(&mut self, now: Cycle) {
        self.entries.retain(|_, e| e.completion > now);
    }

    /// Looks up an in-flight miss for `line`, retiring stale entries first.
    pub fn lookup(&mut self, line: LineAddr, now: Cycle) -> Option<&mut MshrEntry> {
        self.retire(now);
        self.entries.get_mut(&line)
    }

    /// Returns the earliest completion time among outstanding entries, if any.
    #[must_use]
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.entries.values().map(|e| e.completion).min()
    }

    /// Non-mutating completion probe: the cycle at which the outstanding miss
    /// for `line` completes, if one is still in flight at `now`.
    ///
    /// Unlike [`MshrFile::lookup`] this neither retires stale entries nor
    /// hands out a mutable reference, so timing models can ask "when does
    /// this particular access come back?" without perturbing the file.
    #[must_use]
    pub fn completion_of(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.entries.get(&line).map(|e| e.completion).filter(|&c| c > now)
    }

    /// Allocates an entry for `line`.
    ///
    /// If the file is full, demand allocations first displace an outstanding
    /// *prefetch* entry (demands have priority over best-effort prefetches in
    /// real MSHR designs); only when every entry belongs to a demand does the
    /// new request stall until the earliest outstanding miss retires. The
    /// returned value is the number of cycles the requester had to stall.
    ///
    /// The caller is responsible for having checked that `line` is not already
    /// in flight (via [`MshrFile::lookup`]).
    pub fn allocate(
        &mut self,
        line: LineAddr,
        completion: Cycle,
        prefetch_issuer: Option<PrefetcherId>,
        now: Cycle,
    ) -> Cycle {
        self.retire(now);
        let mut stall = 0;
        if self.entries.len() >= self.capacity {
            // Demand priority: displace the prefetch entry that would complete
            // last (it has received the least DRAM service so far).
            let prefetch_victim = if prefetch_issuer.is_none() {
                self.entries
                    .values()
                    .filter(|e| e.prefetch_issuer.is_some() && !e.demand_merged)
                    .max_by_key(|e| (e.completion, e.line))
                    .map(|e| e.line)
            } else {
                None
            };
            if let Some(victim) = prefetch_victim {
                self.entries.remove(&victim);
            } else {
                // Structural hazard: wait for the oldest outstanding miss.
                if let Some(earliest) = self.earliest_completion() {
                    stall = earliest.saturating_sub(now);
                    self.retire(earliest);
                }
                // If retiring did not help (all completions identical and
                // still in the future), forcefully drop the earliest to make
                // room; this only triggers under extreme oversubscription.
                if self.entries.len() >= self.capacity {
                    if let Some((&victim, _)) =
                        self.entries.iter().min_by_key(|(_, e)| (e.completion, e.line))
                    {
                        self.entries.remove(&victim);
                    }
                }
            }
        }
        self.entries.insert(
            line,
            MshrEntry {
                line,
                completion: completion + stall,
                prefetch_issuer,
                demand_merged: false,
            },
        );
        stall
    }

    /// True if the file currently has a free entry at `now`.
    pub fn has_free(&mut self, now: Cycle) -> bool {
        self.occupancy(now) < self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.capacity(), 2);
        let stall = m.allocate(LineAddr::new(1), 100, None, 0);
        assert_eq!(stall, 0);
        assert!(m.lookup(LineAddr::new(1), 10).is_some());
        assert!(m.lookup(LineAddr::new(2), 10).is_none());
        // After completion the entry retires.
        assert!(m.lookup(LineAddr::new(1), 100).is_none());
    }

    #[test]
    fn completion_probe_is_non_mutating() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(7), 120, None, 0);
        // In flight: the probe reports the completion cycle without retiring.
        assert_eq!(m.completion_of(LineAddr::new(7), 10), Some(120));
        assert_eq!(m.completion_of(LineAddr::new(8), 10), None);
        // At or past completion the access is no longer outstanding.
        assert_eq!(m.completion_of(LineAddr::new(7), 120), None);
        // ...but the probe did not remove the (stale) entry itself.
        assert_eq!(m.entries.len(), 1);
    }

    #[test]
    fn merge_flag_is_writable() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(5), 50, Some(PrefetcherId(1)), 0);
        let e = m.lookup(LineAddr::new(5), 1).unwrap();
        assert_eq!(e.prefetch_issuer, Some(PrefetcherId(1)));
        assert!(!e.demand_merged);
        e.demand_merged = true;
        assert!(m.lookup(LineAddr::new(5), 2).unwrap().demand_merged);
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(1), 100, None, 0);
        m.allocate(LineAddr::new(2), 200, None, 0);
        assert!(!m.has_free(0));
        // Third allocation at cycle 10 must wait for the earliest (100).
        let stall = m.allocate(LineAddr::new(3), 300, None, 10);
        assert_eq!(stall, 90);
        assert!(m.lookup(LineAddr::new(3), 150).is_some());
    }

    #[test]
    fn occupancy_retires_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 10, None, 0);
        m.allocate(LineAddr::new(2), 20, None, 0);
        assert_eq!(m.occupancy(5), 2);
        assert_eq!(m.occupancy(15), 1);
        assert_eq!(m.occupancy(25), 0);
        assert!(m.has_free(0));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
