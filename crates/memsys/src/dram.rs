//! Banked, channelled DRAM timing model.
//!
//! Each 64 B line fill is mapped to a (channel, rank, bank) by line address,
//! pays row-buffer-aware activation/column latencies, queues behind earlier
//! requests to the same bank, and occupies the channel data bus for one burst.
//! This captures the two DRAM effects the paper's evaluation depends on:
//! limited bandwidth (prefetch over-aggressiveness hurts, Fig. 16) and
//! bank-level parallelism (MLP helps).

use std::collections::HashMap;

use alecto_types::LineAddr;

use crate::config::DramParams;
use crate::stats::Cycle;

/// Statistics kept by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total line transfers serviced.
    pub accesses: u64,
    /// Accesses that hit in an open row buffer.
    pub row_hits: u64,
    /// Accesses that required an activate (row miss).
    pub row_misses: u64,
    /// Total cycles spent queued behind bank/bus conflicts.
    pub queue_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    busy_until: Cycle,
    open_row: Option<u64>,
}

/// The DRAM timing model.
#[derive(Debug, Clone)]
pub struct DramModel {
    params: DramParams,
    banks: Vec<BankState>,
    channel_busy_until: Vec<Cycle>,
    /// Portion of each channel's backlog that consists of queued prefetch
    /// transfers; demand accesses are allowed to bypass it (memory-controller
    /// read priority over best-effort prefetches).
    prefetch_backlog: Vec<Cycle>,
    stats: DramStats,
    /// Lazily computed latencies in core cycles.
    act_cycles: u64,
    cas_cycles: u64,
    pre_cycles: u64,
    burst_cycles: u64,
}

impl DramModel {
    /// Builds a DRAM model from its parameters.
    #[must_use]
    pub fn new(params: DramParams) -> Self {
        let total_banks = params.total_banks();
        Self {
            act_cycles: params.ns_to_cycles(params.trcd_ns),
            cas_cycles: params.ns_to_cycles(params.tcas_ns),
            pre_cycles: params.ns_to_cycles(params.trp_ns),
            burst_cycles: params.burst_cycles(),
            banks: vec![BankState::default(); total_banks],
            channel_busy_until: vec![0; params.channels],
            prefetch_backlog: vec![0; params.channels],
            params,
            stats: DramStats::default(),
        }
    }

    /// Configuration in use.
    #[must_use]
    pub const fn params(&self) -> &DramParams {
        &self.params
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn map(&self, line: LineAddr) -> (usize, usize, u64) {
        // Interleave consecutive lines across channels, then banks, to expose
        // bank-level parallelism for streaming patterns.
        let raw = line.raw();
        let channel = (raw as usize) % self.params.channels;
        let per_channel_banks = self.params.ranks_per_channel * self.params.banks_per_rank;
        let bank_in_channel = ((raw / self.params.channels as u64) as usize) % per_channel_banks;
        let bank = channel * per_channel_banks + bank_in_channel;
        let lines_per_row = self.params.row_bytes / alecto_types::CACHE_LINE_BYTES;
        let row = raw / (lines_per_row * self.params.channels as u64 * per_channel_banks as u64);
        (channel, bank, row)
    }

    /// Services a *demand* line fill arriving at `now`; returns the cycle at
    /// which the data has been fully transferred to the LLC. Demand accesses
    /// may bypass queued prefetch transfers on the channel bus.
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.access_with_kind(line, now, false)
    }

    /// Services a *prefetch* line fill arriving at `now`. Prefetch transfers
    /// only use bandwidth left over by demand traffic: they queue at the tail
    /// of the channel and are pushed back whenever a demand bypasses them.
    pub fn access_prefetch(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.access_with_kind(line, now, true)
    }

    fn access_with_kind(&mut self, line: LineAddr, now: Cycle, is_prefetch: bool) -> Cycle {
        let (channel, bank, row) = self.map(line);
        self.stats.accesses += 1;

        let bank_state = &mut self.banks[bank];
        let start = now.max(bank_state.busy_until);
        let queued = start - now;

        let array_latency = match bank_state.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.cas_cycles
            }
            Some(_) => {
                self.stats.row_misses += 1;
                self.pre_cycles + self.act_cycles + self.cas_cycles
            }
            None => {
                self.stats.row_misses += 1;
                self.act_cycles + self.cas_cycles
            }
        };
        bank_state.open_row = Some(row);

        // Data must also win the channel bus for one burst. Demands may jump
        // ahead of any queued prefetch transfers (whose work is still owed —
        // the channel stays busy for it), prefetches join at the tail.
        let data_ready = start + array_latency;
        let channel_busy = self.channel_busy_until[channel];
        let backlog = self.prefetch_backlog[channel].min(channel_busy.saturating_sub(now));
        let effective_busy =
            if is_prefetch { channel_busy } else { channel_busy.saturating_sub(backlog) };
        let bus_start = data_ready.max(effective_busy);
        let bus_queue = bus_start - data_ready;
        let completion = bus_start + self.burst_cycles;
        let new_busy = channel_busy.max(bus_start) + self.burst_cycles;

        bank_state.busy_until = completion;
        self.channel_busy_until[channel] = new_busy;
        let new_backlog = if is_prefetch { backlog + self.burst_cycles } else { backlog };
        self.prefetch_backlog[channel] = new_backlog.min(new_busy.saturating_sub(now));
        self.stats.queue_cycles += queued + bus_queue;
        completion
    }

    /// Idealised unloaded latency of a row-miss access (activation + column +
    /// burst), used by the core model when estimating whether a prefetch could
    /// have been timely.
    #[must_use]
    pub fn unloaded_latency(&self) -> u64 {
        self.act_cycles + self.cas_cycles + self.burst_cycles
    }

    /// Approximate achievable line fills per 1000 cycles given the channel
    /// count, used in tests to sanity-check bandwidth scaling.
    #[must_use]
    pub fn peak_lines_per_kcycle(&self) -> f64 {
        1000.0 * self.params.channels as f64 / self.burst_cycles as f64
    }

    /// Backlog of the channel that `line` maps to, measured in burst slots
    /// (how many line transfers are already queued ahead of an access issued
    /// at `now`). Memory controllers use exactly this signal to drop or
    /// deprioritise prefetch traffic under load.
    #[must_use]
    pub fn queue_pressure(&self, line: LineAddr, now: Cycle) -> f64 {
        let (channel, _, _) = self.map(line);
        let busy = self.channel_busy_until[channel];
        if busy > now {
            (busy - now) as f64 / self.burst_cycles as f64
        } else {
            0.0
        }
    }

    /// Returns a per-channel utilisation snapshot against `now` (1.0 means the
    /// channel is saturated into the future).
    #[must_use]
    pub fn channel_pressure(&self, now: Cycle) -> Vec<f64> {
        self.channel_busy_until
            .iter()
            .map(
                |&busy| {
                    if busy > now {
                        (busy - now) as f64 / self.burst_cycles as f64
                    } else {
                        0.0
                    }
                },
            )
            .collect()
    }

    /// Histogram of how many accesses each bank has served (testing aid).
    #[must_use]
    pub fn bank_balance(&self, lines: &[LineAddr]) -> HashMap<usize, u64> {
        let mut h = HashMap::new();
        for &l in lines {
            let (_, bank, _) = self.map(l);
            *h.entry(bank).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramKind;

    fn model(kind: DramKind) -> DramModel {
        DramModel::new(DramParams::single_core(kind))
    }

    #[test]
    fn first_access_pays_activation() {
        let mut d = model(DramKind::Ddr4_2400);
        let done = d.access(LineAddr::new(0), 0);
        assert_eq!(done, d.unloaded_latency());
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = model(DramKind::Ddr4_2400);
        let first = d.access(LineAddr::new(0), 0);
        // Same bank (8 banks, single channel: line 8 maps back to bank 0) and
        // same row; access much later so there is no queueing.
        let start = first + 10_000;
        let hit_done = d.access(LineAddr::new(8), start) - start;
        // Same bank, different row.
        let far = LineAddr::new(8 * 128 * 100);
        let start2 = start + 10_000;
        let miss_done = d.access(far, start2) - start2;
        assert!(hit_done < miss_done, "row hit {hit_done} should beat row conflict {miss_done}");
        assert!(d.stats().row_hits >= 1);
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut d = model(DramKind::Ddr4_2400);
        // Two accesses to the same line map to the same bank and row.
        let a = d.access(LineAddr::new(0), 0);
        let b = d.access(LineAddr::new(0), 0);
        assert!(b > a);
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn ddr4_faster_than_ddr3_under_load() {
        let mut d3 = model(DramKind::Ddr3_1600);
        let mut d4 = model(DramKind::Ddr4_2400);
        let mut done3 = 0;
        let mut done4 = 0;
        for i in 0..256 {
            done3 = d3.access(LineAddr::new(i), 0);
            done4 = d4.access(LineAddr::new(i), 0);
        }
        assert!(done4 < done3, "DDR4 should drain a burst of fills sooner ({done4} vs {done3})");
    }

    #[test]
    fn multichannel_increases_throughput() {
        let single = DramModel::new(DramParams::single_core(DramKind::Ddr4_2400));
        let quad = DramModel::new(DramParams::multi_core(DramKind::Ddr4_2400, 8));
        assert!(quad.peak_lines_per_kcycle() > 3.0 * single.peak_lines_per_kcycle());
    }

    #[test]
    fn consecutive_lines_spread_over_banks() {
        let d = DramModel::new(DramParams::multi_core(DramKind::Ddr4_2400, 8));
        let lines: Vec<LineAddr> = (0..64).map(LineAddr::new).collect();
        let balance = d.bank_balance(&lines);
        assert!(
            balance.len() > 8,
            "64 consecutive lines should hit many banks, got {}",
            balance.len()
        );
    }

    #[test]
    fn channel_pressure_reports_backlog() {
        let mut d = model(DramKind::Ddr4_2400);
        for i in 0..32 {
            d.access(LineAddr::new(i * 2), 0);
        }
        let pressure = d.channel_pressure(0);
        assert_eq!(pressure.len(), 1);
        assert!(pressure[0] > 1.0);
        // Far in the future the backlog has drained.
        assert_eq!(d.channel_pressure(1_000_000)[0], 0.0);
    }
}
