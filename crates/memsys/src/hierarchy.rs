//! The three-level hierarchy of Table I: per-core private L1D and L2, a
//! shared L3, and DRAM, plus the plumbing that lets the CPU model issue
//! demand accesses and prefetch requests with cycle timestamps.

use alecto_types::{FillLevel, LineAddr, Pc, PrefetchRequest, PrefetcherId};

use crate::cache::Cache;
use crate::config::{HierarchyParams, Level};
use crate::dram::DramModel;
use crate::mshr::MshrFile;
use crate::stats::{CacheStats, Cycle, PrefetchQuality};
use crate::timing::{BandwidthQueue, BandwidthQueueStats, TimingStats};

/// How a demand access interacted with previously issued prefetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageEvent {
    /// Ordinary cache hit on a line that was not brought in by a prefetch.
    CacheHit,
    /// The access hit a line that a completed prefetch had brought in.
    CoveredTimely {
        /// Prefetcher that issued the covering prefetch.
        issuer: PrefetcherId,
        /// PC that triggered the covering prefetch, if recorded.
        trigger_pc: Option<Pc>,
    },
    /// The access found its line still in flight from a prefetch (late).
    CoveredUntimely {
        /// Prefetcher that issued the covering prefetch.
        issuer: PrefetcherId,
        /// PC that triggered the covering prefetch, if recorded.
        trigger_pc: Option<Pc>,
    },
    /// The access had to fetch the line from DRAM itself.
    Uncovered,
    /// The access missed the L1 but was satisfied on-chip (L2/L3) by a line
    /// that no prefetch had brought in.
    OnChipMiss,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandResult {
    /// Level that supplied the data (`None` means the line merged with an
    /// in-flight miss).
    pub hit_level: Option<Level>,
    /// Load-to-use latency in cycles, including MSHR stalls and DRAM queueing.
    pub latency: u64,
    /// Absolute cycle at which the data is available.
    pub completion_cycle: Cycle,
    /// Prefetch coverage classification for Fig. 10.
    pub coverage: CoverageEvent,
}

/// One demand access of a batch handed to [`Hierarchy::demand_access_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandRequest {
    /// Line accessed.
    pub line: LineAddr,
    /// Cycle the access issues at.
    pub now: Cycle,
    /// Whether the access is a store (marks the line dirty).
    pub is_store: bool,
}

/// Result of issuing one prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchIssueResult {
    /// `false` if the request was dropped as redundant (already resident or
    /// already in flight).
    pub issued: bool,
    /// Cycle at which the prefetched line lands in its target cache.
    pub completion_cycle: Cycle,
    /// `true` if the fill had to go all the way to DRAM.
    pub went_to_dram: bool,
}

/// Usefulness feedback about a previously issued prefetch, consumed by
/// selection algorithms that learn from prefetch outcomes (PPF, Bandit reward
/// shaping, statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchFeedback {
    /// Which prefetcher issued the prefetch.
    pub issuer: PrefetcherId,
    /// PC that triggered it, if recorded.
    pub trigger_pc: Option<Pc>,
    /// The prefetched line.
    pub line: LineAddr,
    /// `true` if a demand access used the line, `false` if it was evicted
    /// without use.
    pub useful: bool,
}

/// Channel backlog (in 64 B burst slots) beyond which off-chip prefetches are
/// dropped rather than queued behind demand traffic.
const PREFETCH_DRAM_PRESSURE_LIMIT: f64 = 32.0;

#[derive(Debug)]
struct CorePrivate {
    l1d: Cache,
    l2: Cache,
    l1_mshr: MshrFile,
    l2_mshr: MshrFile,
    quality: PrefetchQuality,
    timing: TimingStats,
}

/// The full memory hierarchy shared by all cores.
#[derive(Debug)]
pub struct Hierarchy {
    params: HierarchyParams,
    cores: Vec<CorePrivate>,
    l3: Cache,
    l3_mshr: MshrFile,
    dram: DramModel,
    /// Memory-controller admission queue in front of the DRAM banks; demand
    /// and prefetch fills alike consume its drain bandwidth.
    dram_queue: BandwidthQueue,
    feedback: Vec<PrefetchFeedback>,
    prefetches_issued: u64,
    prefetches_redundant: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — most importantly when a
    /// level's geometry does not yield a power-of-two set count, which the
    /// set-index mask silently requires (see
    /// [`crate::CacheParams::validate`]).
    #[must_use]
    pub fn new(params: HierarchyParams) -> Self {
        params.validate().unwrap_or_else(|e| panic!("invalid hierarchy configuration: {e}"));
        let cores = (0..params.cores)
            .map(|_| CorePrivate {
                l1d: Cache::new(params.l1d),
                l2: Cache::new(params.l2),
                l1_mshr: MshrFile::new(params.l1d.mshrs),
                l2_mshr: MshrFile::new(params.l2.mshrs),
                quality: PrefetchQuality::default(),
                timing: TimingStats::default(),
            })
            .collect();
        Self {
            l3: Cache::new(params.l3),
            l3_mshr: MshrFile::new(params.l3.mshrs),
            dram: DramModel::new(params.dram),
            dram_queue: BandwidthQueue::new(params.timing),
            cores,
            params,
            feedback: Vec::new(),
            prefetches_issued: 0,
            prefetches_redundant: 0,
        }
    }

    /// Configuration in use.
    #[must_use]
    pub const fn params(&self) -> &HierarchyParams {
        &self.params
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// L1D statistics of `core`.
    #[must_use]
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1d.stats()
    }

    /// L2 statistics of `core`.
    #[must_use]
    pub fn l2_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l2.stats()
    }

    /// Shared L3 statistics.
    #[must_use]
    pub fn l3_stats(&self) -> &CacheStats {
        self.l3.stats()
    }

    /// DRAM statistics.
    #[must_use]
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }

    /// Prefetch-quality breakdown of `core` (Fig. 10).
    #[must_use]
    pub fn quality(&self, core: usize) -> &PrefetchQuality {
        &self.cores[core].quality
    }

    /// Cycle accounting over `core`'s demand stream: access count, summed
    /// load-to-use latency, and the MSHR/DRAM-queue stall breakdown.
    #[must_use]
    pub fn timing_stats(&self, core: usize) -> &TimingStats {
        &self.cores[core].timing
    }

    /// Statistics of the DRAM admission (bandwidth) queue, shared by all
    /// cores and by prefetch traffic.
    #[must_use]
    pub const fn dram_queue_stats(&self) -> &BandwidthQueueStats {
        self.dram_queue.stats()
    }

    /// Total prefetches that actually went out (not dropped as redundant).
    #[must_use]
    pub const fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Prefetches dropped because the line was resident or in flight.
    #[must_use]
    pub const fn prefetches_redundant(&self) -> u64 {
        self.prefetches_redundant
    }

    /// Completion-time query for an individual outstanding access: the cycle
    /// at which the in-flight miss covering `line` completes, probing `core`'s
    /// private L1 and L2 MSHRs and then the shared L3 file, or `None` when the
    /// line is not outstanding anywhere at `now`.
    ///
    /// This is the per-access counterpart of the aggregate latency counters in
    /// [`Hierarchy::timing_stats`]: cycle-level core models (the out-of-order
    /// LSQ in `crates/cpu`) use it to wake individual queue entries instead of
    /// treating every miss as an opaque scalar latency. Read-only — probing
    /// never retires entries or perturbs timing.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn outstanding_completion(&self, core: usize, line: LineAddr, now: Cycle) -> Option<Cycle> {
        let private = &self.cores[core];
        private
            .l1_mshr
            .completion_of(line, now)
            .or_else(|| private.l2_mshr.completion_of(line, now))
            .or_else(|| self.l3_mshr.completion_of(line, now))
    }

    /// Drains accumulated prefetch usefulness feedback.
    pub fn drain_feedback(&mut self) -> Vec<PrefetchFeedback> {
        std::mem::take(&mut self.feedback)
    }

    fn record_eviction_feedback(
        feedback: &mut Vec<PrefetchFeedback>,
        evicted: Option<crate::cache::EvictionInfo>,
    ) {
        if let Some(ev) = evicted {
            if ev.was_unused_prefetch {
                if let Some(issuer) = ev.prefetch_issuer {
                    feedback.push(PrefetchFeedback {
                        issuer,
                        trigger_pc: ev.trigger_pc,
                        line: ev.line,
                        useful: false,
                    });
                }
            }
        }
    }

    /// Performs a demand access from `core` to `line` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn demand_access(&mut self, core: usize, line: LineAddr, now: Cycle) -> DemandResult {
        self.demand_access_kind(core, line, now, false)
    }

    /// Performs a demand access, marking the line dirty when `is_store`.
    pub fn demand_access_kind(
        &mut self,
        core: usize,
        line: LineAddr,
        now: Cycle,
        is_store: bool,
    ) -> DemandResult {
        let result = self.demand_access_inner(core, line, now, is_store);
        // Cycle bookkeeping over the same deterministic stream: every demand
        // access contributes its load-to-use latency to the per-core timing
        // record the CPU model folds into IPC / average-latency figures.
        let timing = &mut self.cores[core].timing;
        timing.demand_accesses += 1;
        timing.demand_latency_cycles += result.latency;
        result
    }

    /// Performs a batch of demand accesses from `core`, appending one
    /// [`DemandResult`] per request to `out` in request order. Semantically
    /// identical to calling [`Hierarchy::demand_access_kind`] once per
    /// request — the batch entry point exists to amortise dispatch across
    /// the hot path (one call, one `&mut self` borrow, one bounds check on
    /// the core index per batch instead of per access); the determinism
    /// suite pins the equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn demand_access_batch(
        &mut self,
        core: usize,
        requests: &[DemandRequest],
        out: &mut Vec<DemandResult>,
    ) {
        assert!(core < self.cores.len(), "core index {core} out of range");
        out.reserve(requests.len());
        for req in requests {
            let result = self.demand_access_inner(core, req.line, req.now, req.is_store);
            let timing = &mut self.cores[core].timing;
            timing.demand_accesses += 1;
            timing.demand_latency_cycles += result.latency;
            out.push(result);
        }
    }

    fn demand_access_inner(
        &mut self,
        core: usize,
        line: LineAddr,
        now: Cycle,
        is_store: bool,
    ) -> DemandResult {
        assert!(core < self.cores.len(), "core index {core} out of range");
        let l1_latency = self.params.l1d.latency;
        let l2_latency = self.params.l2.latency;
        let l3_latency = self.params.l3.latency;

        // --- L1 MSHR: line already being fetched? -------------------------
        let cp = &mut self.cores[core];
        if let Some(entry) = cp.l1_mshr.lookup(line, now) {
            let completion = entry.completion;
            let issuer = entry.prefetch_issuer;
            let first_merge = !entry.demand_merged;
            entry.demand_merged = true;
            cp.l1d.stats_mut().demand_mshr_merges += 1;
            // Clear the prefetched-unused bit so the later array hit is not
            // double counted; ignore the array's own coverage signal.
            let _ = cp.l1d.demand_lookup(line, is_store);
            let coverage = match issuer {
                Some(p) if first_merge => {
                    cp.quality.covered_untimely += 1;
                    self.feedback.push(PrefetchFeedback {
                        issuer: p,
                        trigger_pc: None,
                        line,
                        useful: true,
                    });
                    CoverageEvent::CoveredUntimely { issuer: p, trigger_pc: None }
                }
                _ => CoverageEvent::CacheHit,
            };
            let latency = l1_latency.max(completion.saturating_sub(now));
            return DemandResult {
                hit_level: None,
                latency,
                completion_cycle: now + latency,
                coverage,
            };
        }

        // --- L1 array ------------------------------------------------------
        if let Some(before) = self.cores[core].l1d.demand_lookup(line, is_store) {
            let coverage = if before.prefetched_unused {
                let issuer = before.prefetch_issuer.expect("prefetched line records its issuer");
                self.cores[core].quality.covered_timely += 1;
                self.feedback.push(PrefetchFeedback {
                    issuer,
                    trigger_pc: before.trigger_pc,
                    line,
                    useful: true,
                });
                CoverageEvent::CoveredTimely { issuer, trigger_pc: before.trigger_pc }
            } else {
                CoverageEvent::CacheHit
            };
            return DemandResult {
                hit_level: Some(Level::L1),
                latency: l1_latency,
                completion_cycle: now + l1_latency,
                coverage,
            };
        }

        // --- L1 miss: walk the outer levels --------------------------------
        // Each level a request misses in costs that level's tag-check
        // escalation penalty on top of wherever the data is finally found.
        let mut went_to_dram = false;
        let mut hit_level = None;
        let mut coverage = CoverageEvent::OnChipMiss;
        let base_latency;
        let mut escalation = self.params.l1d.miss_latency;
        let mut fill_l2 = false;
        let mut fill_l3 = false;

        // L2 lookup / MSHR.
        let l2_meta = self.cores[core].l2.demand_lookup(line, is_store);
        if let Some(meta) = l2_meta {
            hit_level = Some(Level::L2);
            base_latency = l2_latency;
            if meta.prefetched_unused {
                let issuer = meta.prefetch_issuer.expect("prefetched line records its issuer");
                self.cores[core].quality.covered_timely += 1;
                self.feedback.push(PrefetchFeedback {
                    issuer,
                    trigger_pc: meta.trigger_pc,
                    line,
                    useful: true,
                });
                coverage = CoverageEvent::CoveredTimely { issuer, trigger_pc: meta.trigger_pc };
            }
        } else if let Some(entry) = self.cores[core].l2_mshr.lookup(line, now) {
            let completion = entry.completion;
            let issuer = entry.prefetch_issuer;
            let first_merge = !entry.demand_merged;
            entry.demand_merged = true;
            self.cores[core].l2.stats_mut().demand_mshr_merges += 1;
            base_latency = l2_latency.max(completion.saturating_sub(now));
            if let Some(p) = issuer {
                if first_merge {
                    self.cores[core].quality.covered_untimely += 1;
                    self.feedback.push(PrefetchFeedback {
                        issuer: p,
                        trigger_pc: None,
                        line,
                        useful: true,
                    });
                    coverage = CoverageEvent::CoveredUntimely { issuer: p, trigger_pc: None };
                }
            }
        } else {
            // L3 lookup / MSHR.
            fill_l2 = true;
            escalation += self.params.l2.miss_latency;
            let l3_meta = self.l3.demand_lookup(line, is_store);
            if let Some(meta) = l3_meta {
                hit_level = Some(Level::L3);
                base_latency = l3_latency;
                if meta.prefetched_unused {
                    let issuer = meta.prefetch_issuer.expect("prefetched line records its issuer");
                    self.cores[core].quality.covered_timely += 1;
                    self.feedback.push(PrefetchFeedback {
                        issuer,
                        trigger_pc: meta.trigger_pc,
                        line,
                        useful: true,
                    });
                    coverage = CoverageEvent::CoveredTimely { issuer, trigger_pc: meta.trigger_pc };
                }
            } else if let Some(entry) = self.l3_mshr.lookup(line, now) {
                let completion = entry.completion;
                let issuer = entry.prefetch_issuer;
                let first_merge = !entry.demand_merged;
                entry.demand_merged = true;
                self.l3.stats_mut().demand_mshr_merges += 1;
                base_latency = l3_latency.max(completion.saturating_sub(now));
                if let Some(p) = issuer {
                    if first_merge {
                        self.cores[core].quality.covered_untimely += 1;
                        self.feedback.push(PrefetchFeedback {
                            issuer: p,
                            trigger_pc: None,
                            line,
                            useful: true,
                        });
                        coverage = CoverageEvent::CoveredUntimely { issuer: p, trigger_pc: None };
                    }
                }
            } else {
                // DRAM: the request first wins an admission slot at the
                // memory controller (the bandwidth queue), then pays the
                // bank/bus timing from the admitted cycle.
                went_to_dram = true;
                fill_l3 = true;
                hit_level = Some(Level::Dram);
                escalation += self.params.l3.miss_latency;
                let enter = now + l3_latency;
                let admitted = self.dram_queue.admit(enter);
                self.cores[core].timing.dram_queue_cycles += admitted - enter;
                let dram_done = self.dram.access(line, admitted);
                base_latency = dram_done.saturating_sub(now);
                self.cores[core].quality.uncovered += 1;
                coverage = CoverageEvent::Uncovered;
            }
        }

        // --- MSHR allocation stalls -----------------------------------------
        // The guessed completion includes the escalation penalties so a
        // later access that merges on the MSHR entry is never reported
        // complete before the miss it merged into.
        let mut stall = 0;
        let completion_guess = now + base_latency + escalation;
        let l1_stall = self.cores[core].l1_mshr.allocate(line, completion_guess, None, now);
        self.cores[core].l1d.stats_mut().mshr_stall_cycles += l1_stall;
        stall += l1_stall;
        if fill_l2 {
            let l2_stall =
                self.cores[core].l2_mshr.allocate(line, completion_guess + stall, None, now);
            self.cores[core].l2.stats_mut().mshr_stall_cycles += l2_stall;
            stall += l2_stall;
        }
        if went_to_dram {
            let l3_stall = self.l3_mshr.allocate(line, completion_guess + stall, None, now);
            self.l3.stats_mut().mshr_stall_cycles += l3_stall;
            stall += l3_stall;
            self.l3.stats_mut().demand_misses += 1;
        }
        self.cores[core].timing.mshr_stall_cycles += stall;
        let latency = base_latency + escalation + stall + l1_latency.min(4);
        let completion = now + latency;

        // --- Fills -----------------------------------------------------------
        let mut local_feedback = Vec::new();
        let ev = self.cores[core].l1d.fill(line, None, None, is_store);
        Self::record_eviction_feedback(&mut local_feedback, ev);
        if fill_l2 {
            let ev = self.cores[core].l2.fill(line, None, None, false);
            Self::record_eviction_feedback(&mut local_feedback, ev);
        }
        if fill_l3 {
            let ev = self.l3.fill(line, None, None, false);
            Self::record_eviction_feedback(&mut local_feedback, ev);
        }
        for fb in &local_feedback {
            if !fb.useful {
                self.cores[core].quality.overpredicted += 1;
            }
        }
        self.feedback.extend(local_feedback);

        DemandResult { hit_level, latency, completion_cycle: completion, coverage }
    }

    /// Issues one prefetch request on behalf of `core` at cycle `now`.
    pub fn issue_prefetch(
        &mut self,
        core: usize,
        req: &PrefetchRequest,
        now: Cycle,
    ) -> PrefetchIssueResult {
        assert!(core < self.cores.len(), "core index {core} out of range");
        let line = req.line;
        let l2_latency = self.params.l2.latency;
        let l3_latency = self.params.l3.latency;

        // Redundancy checks against the target level and in-flight misses.
        let resident = match req.fill_level {
            FillLevel::L1 => self.cores[core].l1d.prefetch_probe(line),
            FillLevel::L2 => self.cores[core].l2.prefetch_probe(line),
        };
        let in_flight = self.cores[core].l1_mshr.lookup(line, now).is_some()
            || self.cores[core].l2_mshr.lookup(line, now).is_some();
        if resident || in_flight {
            self.prefetches_redundant += 1;
            return PrefetchIssueResult {
                issued: false,
                completion_cycle: now,
                went_to_dram: false,
            };
        }

        // MSHR admission control happens *before* any bandwidth is spent:
        // an L1-targeted prefetch that finds the L1 MSHR file full is demoted
        // to fill the L2 instead; if that file is also full the request is
        // dropped (never stalled — prefetches are best-effort).
        let mut fill_level = req.fill_level;
        if fill_level == FillLevel::L1 && !self.cores[core].l1_mshr.has_free(now) {
            fill_level = FillLevel::L2;
        }
        if fill_level == FillLevel::L2 && !self.cores[core].l2_mshr.has_free(now) {
            self.prefetches_redundant += 1;
            return PrefetchIssueResult {
                issued: false,
                completion_cycle: now,
                went_to_dram: false,
            };
        }
        if fill_level == FillLevel::L2 && self.cores[core].l2.contains(line) {
            // Demoted request finds its line already in the L2: nothing to do.
            self.prefetches_redundant += 1;
            return PrefetchIssueResult {
                issued: false,
                completion_cycle: now,
                went_to_dram: false,
            };
        }

        // Find the data: L2 (when targeting L1), then L3, then DRAM. Each
        // level probed and missed costs its tag-check escalation penalty,
        // exactly as on the demand path.
        let mut went_to_dram = false;
        let mut escalation = 0;
        let mut base_latency = match fill_level {
            FillLevel::L1 => {
                if self.cores[core].l2.contains(line) {
                    l2_latency
                } else {
                    escalation += self.params.l2.miss_latency;
                    0
                }
            }
            FillLevel::L2 => {
                // Reaching here means the L2 was probed (redundancy check or
                // demotion) and missed, so it pays the same escalation as an
                // L1-targeted request that missed the L2.
                escalation += self.params.l2.miss_latency;
                0
            }
        };
        if base_latency == 0 {
            if self.l3.contains(line) {
                base_latency = l3_latency;
            } else if let Some(entry) = self.l3_mshr.lookup(line, now) {
                base_latency = l3_latency.max(entry.completion.saturating_sub(now));
            } else {
                // Off-chip prefetch: memory controllers treat prefetches as
                // best-effort traffic. When the target channel already has a
                // deep backlog, issuing the prefetch would only delay demand
                // fills, so it is dropped instead.
                if self.dram.queue_pressure(line, now + l3_latency) > PREFETCH_DRAM_PRESSURE_LIMIT {
                    self.prefetches_redundant += 1;
                    return PrefetchIssueResult {
                        issued: false,
                        completion_cycle: now,
                        went_to_dram: false,
                    };
                }
                went_to_dram = true;
                escalation += self.params.l3.miss_latency;
                // Prefetch fills consume the same admission bandwidth as
                // demand fills — that shared drain is what lets aggressive
                // prefetching visibly crowd out demand traffic.
                let admitted = self.dram_queue.admit(now + l3_latency);
                let dram_done = self.dram.access_prefetch(line, admitted);
                base_latency = dram_done.saturating_sub(now);
            }
        }
        let base_latency = base_latency + escalation;

        let completion = now + base_latency;
        match fill_level {
            FillLevel::L1 => {
                self.cores[core].l1_mshr.allocate(line, completion, Some(req.issuer), now);
            }
            FillLevel::L2 => {
                self.cores[core].l2_mshr.allocate(line, completion, Some(req.issuer), now);
            }
        }
        if went_to_dram {
            self.l3_mshr.allocate(line, completion, Some(req.issuer), now);
        }

        // Fill the target level (timing is governed by the MSHR entry).
        let mut local_feedback = Vec::new();
        let ev = match fill_level {
            FillLevel::L1 => {
                self.cores[core].l1d.fill(line, Some(req.issuer), Some(req.trigger_pc), false)
            }
            FillLevel::L2 => {
                self.cores[core].l2.fill(line, Some(req.issuer), Some(req.trigger_pc), false)
            }
        };
        Self::record_eviction_feedback(&mut local_feedback, ev);
        if went_to_dram {
            let ev = self.l3.fill(line, None, None, false);
            Self::record_eviction_feedback(&mut local_feedback, ev);
        }
        for fb in &local_feedback {
            if !fb.useful {
                self.cores[core].quality.overpredicted += 1;
            }
        }
        self.feedback.extend(local_feedback);

        self.prefetches_issued += 1;
        PrefetchIssueResult { issued: true, completion_cycle: completion, went_to_dram }
    }

    /// Idealised DRAM latency (used by the core model for stall estimation).
    #[must_use]
    pub fn unloaded_dram_latency(&self) -> u64 {
        self.params.l3.latency + self.dram.unloaded_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Pc;

    fn hier(cores: usize) -> Hierarchy {
        Hierarchy::new(HierarchyParams::skylake_like(cores))
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let mut h = hier(1);
        let r = h.demand_access(0, LineAddr::new(0x100), 0);
        assert_eq!(r.hit_level, Some(Level::Dram));
        assert_eq!(r.coverage, CoverageEvent::Uncovered);
        assert!(r.latency > h.params().l3.latency);
        let r2 = h.demand_access(0, LineAddr::new(0x100), r.completion_cycle + 1);
        assert_eq!(r2.hit_level, Some(Level::L1));
        assert_eq!(r2.latency, h.params().l1d.latency);
        assert_eq!(r2.coverage, CoverageEvent::CacheHit);
    }

    #[test]
    fn outstanding_completion_tracks_an_individual_miss() {
        let mut h = hier(1);
        let line = LineAddr::new(0x180);
        let r = h.demand_access(0, line, 0);
        // The miss is outstanding: the probe reports the MSHR's fill arrival
        // (at or before the access's end-to-end completion, which also pays
        // the L1 forward latency) and repeating it does not disturb anything.
        let fill = h.outstanding_completion(0, line, 1).expect("miss is in flight");
        assert!(fill > 1 && fill <= r.completion_cycle);
        assert_eq!(h.outstanding_completion(0, line, 1), Some(fill));
        // A line never requested is not outstanding.
        assert_eq!(h.outstanding_completion(0, LineAddr::new(0x999), 1), None);
        // Once the fill lands the access is no longer in flight.
        assert_eq!(h.outstanding_completion(0, line, r.completion_cycle), None);
    }

    #[test]
    fn timely_prefetch_is_covered() {
        let mut h = hier(1);
        let req = PrefetchRequest::new(LineAddr::new(0x200), Pc::new(0x40), PrefetcherId(0));
        let p = h.issue_prefetch(0, &req, 0);
        assert!(p.issued);
        assert!(p.went_to_dram);
        // Demand arrives after the prefetch completed: timely.
        let r = h.demand_access(0, LineAddr::new(0x200), p.completion_cycle + 10);
        assert!(matches!(r.coverage, CoverageEvent::CoveredTimely { issuer: PrefetcherId(0), .. }));
        assert_eq!(h.quality(0).covered_timely, 1);
        let fb = h.drain_feedback();
        assert!(fb.iter().any(|f| f.useful && f.line == LineAddr::new(0x200)));
    }

    #[test]
    fn late_prefetch_is_covered_untimely() {
        let mut h = hier(1);
        let req = PrefetchRequest::new(LineAddr::new(0x300), Pc::new(0x44), PrefetcherId(1));
        let p = h.issue_prefetch(0, &req, 0);
        assert!(p.issued);
        // Demand arrives while the prefetch is still in flight.
        let r = h.demand_access(0, LineAddr::new(0x300), 1);
        assert!(matches!(
            r.coverage,
            CoverageEvent::CoveredUntimely { issuer: PrefetcherId(1), .. }
        ));
        assert!(r.latency > h.params().l1d.latency);
        assert!(r.latency < p.completion_cycle + 10);
        assert_eq!(h.quality(0).covered_untimely, 1);
    }

    #[test]
    fn redundant_prefetch_is_dropped() {
        let mut h = hier(1);
        let line = LineAddr::new(0x400);
        let r = h.demand_access(0, line, 0);
        let req = PrefetchRequest::new(line, Pc::new(0x48), PrefetcherId(0));
        let p = h.issue_prefetch(0, &req, r.completion_cycle + 1);
        assert!(!p.issued);
        assert_eq!(h.prefetches_redundant(), 1);
    }

    #[test]
    fn l2_fill_level_prefetch_lands_in_l2() {
        let mut h = hier(1);
        let line = LineAddr::new(0x500);
        let req = PrefetchRequest::new(line, Pc::new(0x4c), PrefetcherId(2))
            .with_fill_level(alecto_types::FillLevel::L2);
        let p = h.issue_prefetch(0, &req, 0);
        assert!(p.issued);
        // Demand later: L1 misses, L2 hits with the prefetched line.
        let r = h.demand_access(0, line, p.completion_cycle + 5);
        assert_eq!(r.hit_level, Some(Level::L2));
        assert!(matches!(r.coverage, CoverageEvent::CoveredTimely { issuer: PrefetcherId(2), .. }));
    }

    #[test]
    fn unused_prefetch_eviction_generates_useless_feedback() {
        let mut h = hier(1);
        // Fill one L1 set (64 sets, 8 ways) with conflicting prefetches plus
        // demand traffic so that an unused prefetched line gets evicted.
        let set_stride = 64; // lines per set cycle for 64-set L1
        let victim = LineAddr::new(7);
        let req = PrefetchRequest::new(victim, Pc::new(0x60), PrefetcherId(0));
        h.issue_prefetch(0, &req, 0);
        let mut t = 1_000;
        for i in 1..=16 {
            let line = LineAddr::new(7 + i * set_stride);
            let r = h.demand_access(0, line, t);
            t = r.completion_cycle + 1;
        }
        let fb = h.drain_feedback();
        assert!(
            fb.iter().any(|f| !f.useful && f.line == victim),
            "victim should be reported useless"
        );
        assert!(h.quality(0).overpredicted >= 1);
    }

    #[test]
    fn batched_demand_accesses_match_scalar_accesses() {
        // The batch entry point must be indistinguishable from per-access
        // calls: same results, same stats, same feedback, same DRAM state.
        let requests: Vec<DemandRequest> = (0..200u64)
            .map(|i| DemandRequest {
                line: LineAddr::new((i * 13) % 64),
                now: i * 3,
                is_store: i % 5 == 0,
            })
            .collect();
        let mut scalar = hier(1);
        let scalar_results: Vec<DemandResult> = requests
            .iter()
            .map(|r| scalar.demand_access_kind(0, r.line, r.now, r.is_store))
            .collect();
        let mut batched = hier(1);
        let mut batched_results = Vec::new();
        for chunk in requests.chunks(7) {
            batched.demand_access_batch(0, chunk, &mut batched_results);
        }
        assert_eq!(batched_results, scalar_results);
        assert_eq!(batched.timing_stats(0), scalar.timing_stats(0));
        assert_eq!(batched.l1_stats(0), scalar.l1_stats(0));
        assert_eq!(batched.drain_feedback(), scalar.drain_feedback());
    }

    #[test]
    fn multicore_cores_are_isolated_in_private_levels() {
        let mut h = hier(2);
        let line = LineAddr::new(0x900);
        let r0 = h.demand_access(0, line, 0);
        // Core 1 misses its private caches but hits the shared L3.
        let r1 = h.demand_access(1, line, r0.completion_cycle + 1);
        assert_eq!(r1.hit_level, Some(Level::L3));
        assert_eq!(h.l1_stats(1).demand_misses, 1);
        assert_eq!(h.l1_stats(0).demand_misses, 1);
    }

    #[test]
    fn dram_contention_increases_latency() {
        let mut h = hier(1);
        // Back-to-back cold misses at the same cycle queue in DRAM.
        let a = h.demand_access(0, LineAddr::new(0x10_000), 0);
        let b = h.demand_access(0, LineAddr::new(0x20_000), 0);
        assert!(b.latency >= a.latency, "second concurrent miss should not be faster");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_index_panics() {
        let mut h = hier(1);
        let _ = h.demand_access(3, LineAddr::new(1), 0);
    }

    #[test]
    fn timing_stats_account_every_demand_access() {
        let mut h = hier(1);
        let mut t = 0;
        let mut latency_sum = 0;
        for i in 0..10u64 {
            let r = h.demand_access(0, LineAddr::new(i * 1000), t);
            latency_sum += r.latency;
            t = r.completion_cycle + 1;
        }
        let stats = h.timing_stats(0);
        assert_eq!(stats.demand_accesses, 10);
        assert_eq!(stats.demand_latency_cycles, latency_sum);
        assert!(
            stats.avg_demand_latency() > f64::from(u32::try_from(h.params().l1d.latency).unwrap())
        );
    }

    #[test]
    fn miss_escalation_penalties_are_charged_per_level() {
        // An L2 hit costs the L1 miss penalty on top of the L2 latency; an
        // L3 hit additionally costs the L2 miss penalty.
        let mut h = hier(2);
        let line = LineAddr::new(0x5000);
        let r0 = h.demand_access(0, line, 0); // cold: DRAM
                                              // Core 0 again: L1 hit, no penalty.
        let r1 = h.demand_access(0, line, r0.completion_cycle + 1);
        assert_eq!(r1.latency, h.params().l1d.latency);
        // Core 1: misses its private levels, hits the shared L3.
        let r2 = h.demand_access(1, line, r0.completion_cycle + 2);
        assert_eq!(r2.hit_level, Some(Level::L3));
        let p = h.params().clone();
        assert_eq!(
            r2.latency,
            p.l3.latency + p.l1d.miss_latency + p.l2.miss_latency + p.l1d.latency.min(4)
        );
    }

    #[test]
    fn bandwidth_bound_timing_throttles_dram_streams() {
        // The same burst of cold misses takes longer end-to-end under a
        // bandwidth-bound admission queue than under a latency-sensitive one,
        // and the queue's stall cycles show up in the per-core timing stats.
        // Consecutive lines stream across banks at the channel-bus rate
        // (~1/9 req/cycle on one DDR4 channel), so a 1/16 admission drain is
        // the binding constraint while the latency-sensitive drain is not.
        let run = |timing: crate::timing::TimingParams| {
            let mut h = Hierarchy::new(HierarchyParams::with_timing(1, timing));
            let mut done = 0;
            for i in 0..64u64 {
                let r = h.demand_access(0, LineAddr::new(i), 0);
                done = done.max(r.completion_cycle);
            }
            (done, h.timing_stats(0).dram_queue_cycles, h.dram_queue_stats().admitted)
        };
        let (fast_done, fast_queue, fast_admitted) =
            run(crate::timing::TimingParams::latency_sensitive());
        let (slow_done, slow_queue, slow_admitted) =
            run(crate::timing::TimingParams::bandwidth_bound());
        assert_eq!(fast_admitted, 64);
        assert_eq!(slow_admitted, 64);
        assert!(
            slow_done > fast_done,
            "bandwidth-bound drain must stretch the burst ({slow_done} vs {fast_done})"
        );
        assert!(slow_queue > fast_queue, "queue stalls must be visible in timing stats");
    }
}
