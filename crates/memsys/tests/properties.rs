//! Property tests over the memory-system invariants the parallel experiment
//! engine leans on: the MSHR file must bound outstanding misses and merge
//! duplicate lines, and the cache must honour hit-after-fill and the
//! eviction invariants, under *arbitrary* access sequences — not just the
//! hand-picked ones of the unit tests.

use alecto_types::{LineAddr, PrefetcherId, CACHE_LINE_BYTES};
use memsys::{Cache, CacheParams, MshrFile};
use proptest::prelude::*;

/// One random MSHR operation: allocate (demand or prefetch) or a lookup.
#[derive(Debug, Clone, Copy)]
enum MshrOp {
    Allocate { line: u64, latency: u64, prefetch: bool },
    Lookup { line: u64 },
}

fn mshr_op() -> impl Strategy<Value = MshrOp> {
    prop_oneof![
        (0u64..32, 1u64..400, any::<bool>())
            .prop_map(|(line, latency, prefetch)| MshrOp::Allocate { line, latency, prefetch }),
        (0u64..32).prop_map(|line| MshrOp::Lookup { line }),
    ]
}

proptest! {
    #[test]
    fn mshr_occupancy_never_exceeds_capacity(
        capacity in 1usize..16,
        ops in proptest::collection::vec(mshr_op(), 1..120),
    ) {
        let mut mshr = MshrFile::new(capacity);
        let mut now = 0;
        for op in ops {
            now += 3;
            match op {
                MshrOp::Allocate { line, latency, prefetch } => {
                    let line = LineAddr::new(line);
                    // Callers merge via lookup before allocating, as the
                    // hierarchy does.
                    if mshr.lookup(line, now).is_none() {
                        let issuer = prefetch.then_some(PrefetcherId(0));
                        mshr.allocate(line, now + latency, issuer, now);
                    }
                }
                MshrOp::Lookup { line } => {
                    let _ = mshr.lookup(LineAddr::new(line), now);
                }
            }
            prop_assert!(
                mshr.occupancy(now) <= capacity,
                "occupancy {} over capacity {capacity}",
                mshr.occupancy(now),
            );
        }
    }

    #[test]
    fn mshr_merges_duplicate_lines(
        capacity in 1usize..16,
        line in 0u64..1_000,
        latency in 2u64..500,
    ) {
        let mut mshr = MshrFile::new(capacity);
        let line = LineAddr::new(line);
        prop_assert!(mshr.lookup(line, 0).is_none());
        mshr.allocate(line, latency, Some(PrefetcherId(1)), 0);
        // While in flight, a second request to the same line must find the
        // existing entry (and may merge into it) instead of re-allocating.
        let in_flight = mshr.lookup(line, latency - 1);
        prop_assert!(in_flight.is_some());
        let entry = in_flight.expect("checked above");
        prop_assert_eq!(entry.line, line);
        entry.demand_merged = true;
        prop_assert_eq!(mshr.occupancy(latency - 1), 1);
        // After completion the entry retires and the line misses again.
        prop_assert!(mshr.lookup(line, latency).is_none());
    }

    #[test]
    fn cache_hits_after_fill_until_evicted(
        ways in 1usize..8,
        sets_log2 in 0u32..4,
        fills in proptest::collection::vec(0u64..64, 1..80),
        probe in 0u64..64,
    ) {
        let sets = 1usize << sets_log2;
        let mut cache = Cache::new(CacheParams {
            size_bytes: (ways * sets) as u64 * CACHE_LINE_BYTES,
            ways,
            latency: 4,
            miss_latency: 1,
            mshrs: 4,
        });
        let mut resident: Vec<u64> = Vec::new();
        for line in fills {
            let evicted = cache.fill(LineAddr::new(line), None, None, false);
            if !resident.contains(&line) {
                resident.push(line);
            }
            if let Some(victim) = evicted {
                prop_assert!(
                    !cache.contains(victim.line),
                    "evicted line {victim:?} still resident",
                );
                resident.retain(|&l| l != victim.line.raw());
            }
            // Hit-after-fill: the just-filled line is always resident.
            prop_assert!(cache.contains(LineAddr::new(line)));
            prop_assert!(cache.demand_lookup(LineAddr::new(line), false).is_some());
            // Eviction invariant: occupancy is bounded by the geometry and
            // matches the model of resident lines exactly.
            prop_assert!(cache.occupancy() <= ways * sets);
            prop_assert_eq!(cache.occupancy(), resident.len());
        }
        // The cache agrees with the reference model on arbitrary probes.
        prop_assert_eq!(cache.contains(LineAddr::new(probe)), resident.contains(&probe));
    }

    #[test]
    fn cache_never_duplicates_a_line(
        fills in proptest::collection::vec(0u64..16, 1..60),
    ) {
        let mut cache = Cache::new(CacheParams {
            size_bytes: 4 * CACHE_LINE_BYTES,
            ways: 2,
            latency: 1,
            miss_latency: 1,
            mshrs: 2,
        });
        for line in fills {
            cache.fill(LineAddr::new(line), None, None, false);
            let mut seen: Vec<u64> = cache.resident_lines().map(|m| m.line.raw()).collect();
            let before = seen.len();
            seen.sort_unstable();
            seen.dedup();
            prop_assert!(before == seen.len(), "duplicate resident lines");
        }
    }
}
